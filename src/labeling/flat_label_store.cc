#include "labeling/flat_label_store.h"

#include <algorithm>
#include <limits>

#include "exec/parallel.h"

namespace gsr {

bool LabelView::Contains(uint32_t value) const {
  // Normalized intervals are exactly the kernel's precondition; same
  // dispatch as FlatLabelStore::Contains so both paths answer alike.
  return simd::IntervalContains(intervals_.data(), intervals_.size(), value);
}

uint64_t LabelView::CoveredValues() const {
  uint64_t total = 0;
  for (const Interval& interval : intervals_) {
    total += static_cast<uint64_t>(interval.hi) - interval.lo + 1;
  }
  return total;
}

std::string LabelView::ToString() const { return IntervalsToString(intervals_); }

FlatLabelStore FlatLabelStore::Freeze(std::span<const LabelSet> sets,
                                      exec::ThreadPool* pool) {
  FlatLabelStore store;
  const size_t n = sets.size();
  store.owned_offsets_.resize(n + 1);
  uint64_t total = 0;
  store.owned_offsets_[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    total += sets[v].size();
    GSR_CHECK(total <= std::numeric_limits<uint32_t>::max());
    store.owned_offsets_[v + 1] = static_cast<uint32_t>(total);
  }
  store.owned_intervals_.resize(total);
  exec::ForEachIndex(pool, n, 1024, [&store, sets](size_t v) {
    const std::vector<Interval>& src = sets[v].intervals();
    std::copy(src.begin(), src.end(),
              store.owned_intervals_.begin() + store.owned_offsets_[v]);
  });
  store.offsets_ = store.owned_offsets_;
  store.intervals_ = store.owned_intervals_;
  return store;
}

void FlatLabelStore::SerializeTo(BinaryWriter& w) const {
  w.WriteArray(offsets_);
  w.WriteArray(intervals_);
}

Result<FlatLabelStore> FlatLabelStore::Deserialize(BinaryReader& r,
                                                   const BorrowContext& ctx) {
  FlatLabelStore store;
  GSR_RETURN_IF_ERROR(
      r.ReadArrayInto(ctx, &store.owned_offsets_, &store.offsets_));
  GSR_RETURN_IF_ERROR(
      r.ReadArrayInto(ctx, &store.owned_intervals_, &store.intervals_));
  if (store.offsets_.empty()) {
    if (!store.intervals_.empty()) {
      return Status::InvalidArgument(
          "flat label store: intervals without an offsets table");
    }
    return store;
  }
  if (store.offsets_.front() != 0 ||
      store.offsets_.back() != store.intervals_.size()) {
    return Status::InvalidArgument(
        "flat label store: offsets table does not span the interval array");
  }
  for (size_t v = 0; v + 1 < store.offsets_.size(); ++v) {
    if (store.offsets_[v] > store.offsets_[v + 1]) {
      return Status::InvalidArgument(
          "flat label store: offsets table is not monotonic");
    }
  }
  if (ctx.borrow) store.keepalive_ = ctx.keepalive;
  return store;
}

}  // namespace gsr
