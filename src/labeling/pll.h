#ifndef GSR_LABELING_PLL_H_
#define GSR_LABELING_PLL_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "graph/digraph.h"

namespace gsr {

/// Pruned 2-hop labeling for reachability (the PLL scheme behind the
/// original GeoReach paper's SpaReach-PLL baseline [64]).
///
/// Vertices are processed as hubs in descending degree order; hub w runs a
/// *pruned* forward BFS adding its rank to L_in(u) of every newly covered
/// descendant u, and a pruned backward BFS adding itself to L_out(x) of
/// every newly covered ancestor x. A BFS branch is cut as soon as the
/// already-built labels prove the pair covered, which is what keeps the
/// label sets small. Queries are pure label intersections:
///
///   GReach(v, u)  <=>  L_out(v) ∩ L_in(u) ≠ ∅
///
/// (both sets contain the vertex's own rank, making the scheme reflexive).
/// Label-Only: no graph traversal at query time. Input must be a DAG.
class PllIndex {
 public:
  /// Builds the index over `dag` (not retained after construction).
  static PllIndex Build(const DiGraph& dag);

  /// Writes the rank array and CSR label storage (snapshot layer).
  void SerializeTo(BinaryWriter& w) const;

  /// Restores an index from `r`; validates CSR consistency.
  static Result<PllIndex> Deserialize(BinaryReader& r);

  /// True iff `to` is reachable from `from` (reflexive).
  bool CanReach(VertexId from, VertexId to) const;

  /// Number of labeled vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(rank_.size());
  }

  /// Total number of labels over all vertices (index "size" in the 2-hop
  /// literature).
  uint64_t TotalLabels() const;

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const;

  /// The hub rank of vertex v (0 = highest-degree hub); exposed for tests.
  uint32_t RankOf(VertexId v) const { return rank_[v]; }

 private:
  PllIndex() = default;

  std::span<const uint32_t> InLabels(VertexId v) const {
    return {in_labels_.data() + in_offsets_[v],
            in_labels_.data() + in_offsets_[v + 1]};
  }
  std::span<const uint32_t> OutLabels(VertexId v) const {
    return {out_labels_.data() + out_offsets_[v],
            out_labels_.data() + out_offsets_[v + 1]};
  }

  std::vector<uint32_t> rank_;  // vertex -> hub rank
  // CSR label storage, finalized at the end of Build (ranks ascending per
  // vertex because hubs are processed in rank order).
  std::vector<uint64_t> in_offsets_;
  std::vector<uint32_t> in_labels_;
  std::vector<uint64_t> out_offsets_;
  std::vector<uint32_t> out_labels_;
};

}  // namespace gsr

#endif  // GSR_LABELING_PLL_H_
