#include "labeling/interval_labeling.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "exec/parallel.h"

namespace gsr {

namespace {

/// One schedulable slice of the non-tree-edge phase: a contiguous
/// post-order range [post_lo, post_hi] whose label sets only this unit
/// writes, plus the (pre-sorted) non-tree edges whose source lies in the
/// range. Small trees form one unit each; a tree larger than the split
/// threshold contributes one unit per child subtree of its root plus a
/// *root completion* unit ([post(r), post(r)], root != kInvalidVertex)
/// that folds the finished child subtrees into the root.
struct EdgeUnit {
  uint32_t post_lo = 0;
  uint32_t post_hi = 0;
  size_t edge_begin = 0;  // range into forest.non_tree_edges
  size_t edge_end = 0;
  VertexId root = kInvalidVertex;  // set on root completion units only
  std::vector<VertexId> children;  // completion units: child subtree tops
  std::vector<size_t> deps;        // unit indices whose labels this reads
  uint32_t level = 0;              // wave number (1 + max over deps)
};

/// Serial Algorithm 1 lines 19-24: non-spanning edges in ascending source
/// post-order (= reverse topological order for DFS forests; kBfs pre-sorts
/// by an explicit topological order), so L(u) is already complete when
/// edge (v, u) is examined.
void SerialEdgePhase(std::vector<LabelSet>& labels,
                     const SpanningForest& forest) {
  for (const auto& [v, u] : forest.non_tree_edges) {
    labels[v].UnionWith(labels[u]);
    const LabelSet& source = labels[v];
    // Propagate to forest ancestors (lines 23-24). The climb stops as soon
    // as an ancestor's covered set does not grow: by induction every label
    // ever added to a vertex was itself climbed upward, so all higher
    // ancestors cover it too.
    for (VertexId w = forest.parent[v]; w != kInvalidVertex;
         w = forest.parent[w]) {
      if (!labels[w].UnionWith(source)) break;
    }
  }
}

/// Replays one unit of the parallel edge phase. Regular units run the
/// serial per-edge routine with the ancestor climb clamped to the unit's
/// post range (the climb out of a child subtree into its root is deferred
/// to the completion unit). Completion units union each finished child
/// subtree top into the root, then the root's own non-tree edge targets.
void RunEdgeUnit(const EdgeUnit& unit, std::vector<LabelSet>& labels,
                 const SpanningForest& forest) {
  if (unit.root != kInvalidVertex) {
    LabelSet& root_labels = labels[unit.root];
    for (const VertexId c : unit.children) root_labels.UnionWith(labels[c]);
    for (size_t e = unit.edge_begin; e < unit.edge_end; ++e) {
      root_labels.UnionWith(labels[forest.non_tree_edges[e].second]);
    }
    return;
  }
  for (size_t e = unit.edge_begin; e < unit.edge_end; ++e) {
    const auto& [v, u] = forest.non_tree_edges[e];
    labels[v].UnionWith(labels[u]);
    const LabelSet& source = labels[v];
    for (VertexId w = forest.parent[v];
         w != kInvalidVertex && forest.post[w] <= unit.post_hi;
         w = forest.parent[w]) {
      if (!labels[w].UnionWith(source)) break;
    }
  }
}

/// Parallel non-tree-edge phase for DFS forests. The forest is cut into
/// EdgeUnits with disjoint post ranges; a unit's writes stay inside its
/// range (climbs never leave the source's root path) and its cross-unit
/// reads are label sets of edge targets, which DFS guarantees have
/// *smaller* post than their source — so the dependency graph over units
/// is acyclic and always points to earlier post ranges. Executing units
/// level-by-level (all dependencies finished, disjoint writes within a
/// wave) therefore reproduces the serial labels exactly; since normalized
/// interval lists are a canonical representation, the result is
/// bit-identical at any thread count. See DESIGN.md for the full argument.
void ParallelEdgePhase(std::vector<LabelSet>& labels,
                       const SpanningForest& forest, exec::ThreadPool& pool,
                       VertexId n) {
  // 1) Units. Forest roots are processed in ascending post order, so the
  // unit list ends up sorted by post range.
  const size_t split_threshold =
      std::max<size_t>(1024, n / (8 * pool.size()));
  std::vector<EdgeUnit> units;
  for (const VertexId r : forest.roots) {
    const uint32_t lo = forest.min_post_subtree[r];
    const uint32_t hi = forest.post[r];
    if (hi - lo + 1 <= split_threshold) {
      EdgeUnit unit;
      unit.post_lo = lo;
      unit.post_hi = hi;
      units.push_back(std::move(unit));
      continue;
    }
    EdgeUnit completion;
    completion.post_lo = hi;
    completion.post_hi = hi;
    completion.root = r;
    for (uint32_t p = lo; p < hi; ++p) {
      const VertexId v = forest.vertex_of_post[p];
      if (forest.parent[v] != r) continue;
      EdgeUnit child;
      child.post_lo = forest.min_post_subtree[v];
      child.post_hi = forest.post[v];
      units.push_back(std::move(child));
      completion.children.push_back(v);
    }
    units.push_back(std::move(completion));
  }

  // 2) Edges -> owning unit. Both sequences ascend in source post.
  size_t e = 0;
  for (EdgeUnit& unit : units) {
    unit.edge_begin = e;
    while (e < forest.non_tree_edges.size() &&
           forest.post[forest.non_tree_edges[e].first] <= unit.post_hi) {
      ++e;
    }
    unit.edge_end = e;
  }
  GSR_CHECK(e == forest.non_tree_edges.size());

  // 3) Dependencies + wave levels. Post ranges partition [1, n], so the
  // owning unit of any post is a direct lookup; dependencies always point
  // to units with smaller indices (smaller post), hence the single
  // ascending pass settles every level.
  std::vector<uint32_t> unit_of_post(static_cast<size_t>(n) + 1, 0);
  for (size_t i = 0; i < units.size(); ++i) {
    for (uint32_t p = units[i].post_lo; p <= units[i].post_hi; ++p) {
      unit_of_post[p] = static_cast<uint32_t>(i);
    }
  }
  uint32_t max_level = 0;
  for (size_t i = 0; i < units.size(); ++i) {
    EdgeUnit& unit = units[i];
    auto add_dep = [&unit, i](size_t d) {
      if (d != i) unit.deps.push_back(d);
    };
    for (size_t k = unit.edge_begin; k < unit.edge_end; ++k) {
      add_dep(unit_of_post[forest.post[forest.non_tree_edges[k].second]]);
    }
    for (const VertexId c : unit.children) {
      add_dep(unit_of_post[forest.post[c]]);
    }
    std::sort(unit.deps.begin(), unit.deps.end());
    unit.deps.erase(std::unique(unit.deps.begin(), unit.deps.end()),
                    unit.deps.end());
    for (const size_t d : unit.deps) {
      GSR_DCHECK(d < i);
      unit.level = std::max(unit.level, units[d].level + 1);
    }
    max_level = std::max(max_level, unit.level);
  }

  // 4) Execute wave by wave. ParallelFor's completion barrier publishes
  // each wave's writes before the next wave reads them.
  std::vector<std::vector<size_t>> waves(static_cast<size_t>(max_level) + 1);
  for (size_t i = 0; i < units.size(); ++i) {
    waves[units[i].level].push_back(i);
  }
  for (const std::vector<size_t>& wave : waves) {
    pool.ParallelFor(wave.size(), 1, [&](size_t w, unsigned) {
      RunEdgeUnit(units[wave[w]], labels, forest);
    });
  }
}

}  // namespace

IntervalLabeling IntervalLabeling::Build(const DiGraph& dag,
                                         const Options& options,
                                         exec::ThreadPool* pool) {
  IntervalLabeling labeling;
  const VertexId n = dag.num_vertices();

  // Step 1: spanning forest + post-order numbers (Algorithm 1, lines 1-4).
  labeling.forest_ = BuildSpanningForest(dag, options.forest_strategy);
  const SpanningForest& forest = labeling.forest_;
  labeling.stats_.forest_trees = forest.roots.size();
  labeling.stats_.non_tree_edges = forest.non_tree_edges.size();

  // Step 2 (lines 5-18): L(v) is initialized with [post(v), post(v)] and
  // the priority-queue traversal then copies every tree descendant's
  // singleton into v. The post numbers of v's subtree are exactly the
  // contiguous range [min_post_subtree(v), post(v)], so the covered set is
  // materialized directly — independently per vertex.
  std::vector<LabelSet> labels(n);
  exec::ForEachIndex(pool, n, 2048, [&labels, &forest](size_t v) {
    labels[v].Insert(Interval{forest.min_post_subtree[v], forest.post[v]});
  });

  // Step 3: the non-spanning-edge phase. The parallel variant needs the
  // DFS invariant post(u) < post(v) for every edge (v, u); BFS forests
  // order edges by an explicit topological sort instead, so they keep the
  // serial pass.
  if (pool != nullptr && pool->size() > 1 &&
      options.forest_strategy == ForestStrategy::kDfs &&
      !forest.non_tree_edges.empty()) {
    ParallelEdgePhase(labels, forest, *pool, n);
  } else {
    SerialEdgePhase(labels, forest);
  }

  // Accounting: the literal algorithm holds one singleton per distinct
  // descendant post value before compressing (lines 25-26). Chunked
  // partial sums keep the tally exact and order-independent.
  const size_t kStatsChunk = 4096;
  const size_t chunks = (static_cast<size_t>(n) + kStatsChunk - 1) / kStatsChunk;
  std::vector<uint64_t> uncompressed(chunks, 0);
  std::vector<uint64_t> compressed(chunks, 0);
  exec::ForEachIndex(pool, chunks, 1, [&](size_t c) {
    const size_t end = std::min(static_cast<size_t>(n), (c + 1) * kStatsChunk);
    for (size_t v = c * kStatsChunk; v < end; ++v) {
      uncompressed[c] += labels[v].CoveredValues();
      compressed[c] += labels[v].size();
    }
  });
  for (size_t c = 0; c < chunks; ++c) {
    labeling.stats_.uncompressed_labels += uncompressed[c];
    labeling.stats_.compressed_labels += compressed[c];
  }

  // Freeze into the flat SoA layout; the mutable LabelSets die here.
  labeling.flat_ = FlatLabelStore::Freeze(labels, pool);
  return labeling;
}

std::vector<VertexId> IntervalLabeling::Descendants(VertexId v) const {
  std::vector<VertexId> out;
  ForEachDescendant(v, [&out](VertexId u) {
    out.push_back(u);
    return true;
  });
  return out;
}

void IntervalLabeling::SerializeTo(BinaryWriter& w) const {
  SerializeSpanningForest(forest_, w);
  w.WriteU64(stats_.uncompressed_labels);
  w.WriteU64(stats_.compressed_labels);
  w.WriteU64(stats_.non_tree_edges);
  w.WriteU64(stats_.forest_trees);
  flat_.SerializeTo(w);
}

Result<IntervalLabeling> IntervalLabeling::Deserialize(
    BinaryReader& r, const BorrowContext& ctx) {
  auto forest = DeserializeSpanningForest(r);
  if (!forest.ok()) return forest.status();
  IntervalLabeling labeling;
  labeling.forest_ = std::move(forest).value();
  GSR_RETURN_IF_ERROR(r.ReadU64(&labeling.stats_.uncompressed_labels));
  GSR_RETURN_IF_ERROR(r.ReadU64(&labeling.stats_.compressed_labels));
  GSR_RETURN_IF_ERROR(r.ReadU64(&labeling.stats_.non_tree_edges));
  GSR_RETURN_IF_ERROR(r.ReadU64(&labeling.stats_.forest_trees));
  auto flat = FlatLabelStore::Deserialize(r, ctx);
  if (!flat.ok()) return flat.status();
  labeling.flat_ = std::move(flat).value();
  if (labeling.flat_.num_vertices() != labeling.forest_.post.size()) {
    return Status::InvalidArgument(
        "interval labeling: label store and forest disagree on vertex count");
  }
  return labeling;
}

size_t IntervalLabeling::SizeBytes() const {
  size_t total = sizeof(*this);
  total += flat_.SizeBytes();
  total += forest_.parent.size() * sizeof(VertexId);
  total += forest_.post.size() * sizeof(uint32_t);
  total += forest_.vertex_of_post.size() * sizeof(VertexId);
  total += forest_.min_post_subtree.size() * sizeof(uint32_t);
  return total;
}

}  // namespace gsr
