#include "labeling/interval_labeling.h"

#include "common/check.h"

namespace gsr {

IntervalLabeling IntervalLabeling::Build(const DiGraph& dag,
                                         const Options& options) {
  IntervalLabeling labeling;
  const VertexId n = dag.num_vertices();

  // Step 1: spanning forest + post-order numbers (Algorithm 1, lines 1-4).
  labeling.forest_ = BuildSpanningForest(dag, options.forest_strategy);
  const SpanningForest& forest = labeling.forest_;
  labeling.stats_.forest_trees = forest.roots.size();

  // Step 2 (lines 5-18): L(v) is initialized with [post(v), post(v)] and
  // the priority-queue traversal then copies every tree descendant's
  // singleton into v. The post numbers of v's subtree are exactly the
  // contiguous range [min_post_subtree(v), post(v)], so the covered set is
  // materialized directly.
  labeling.labels_.resize(n);
  std::vector<LabelSet>& labels = labeling.labels_;
  for (VertexId v = 0; v < n; ++v) {
    labels[v].Insert(Interval{forest.min_post_subtree[v], forest.post[v]});
  }

  // Propagates `source`'s labels to the forest ancestors of `v` (lines
  // 14-15 / 23-24). The climb stops as soon as an ancestor's covered set
  // does not grow: by induction every label ever added to a vertex was
  // itself climbed upward, so all higher ancestors cover it too.
  auto propagate_to_ancestors = [&labels, &forest](VertexId v,
                                                   const LabelSet& source) {
    for (VertexId w = forest.parent[v]; w != kInvalidVertex;
         w = forest.parent[w]) {
      if (!labels[w].UnionWith(source)) break;
    }
  };

  // Step 3: non-spanning edges in ascending source post-order, i.e.
  // reverse topological order, so L(u) is already complete when edge
  // (v, u) is examined (lines 19-24). BuildSpanningForest pre-sorted them.
  labeling.stats_.non_tree_edges = forest.non_tree_edges.size();
  for (const auto& [v, u] : forest.non_tree_edges) {
    labels[v].UnionWith(labels[u]);
    propagate_to_ancestors(v, labels[v]);
  }

  // Accounting: the literal algorithm holds one singleton per distinct
  // descendant post value before compressing (lines 25-26).
  for (VertexId v = 0; v < n; ++v) {
    labeling.stats_.uncompressed_labels += labels[v].CoveredValues();
    labeling.stats_.compressed_labels += labels[v].size();
    labels[v].ShrinkToFit();
  }
  return labeling;
}

std::vector<VertexId> IntervalLabeling::Descendants(VertexId v) const {
  std::vector<VertexId> out;
  ForEachDescendant(v, [&out](VertexId u) {
    out.push_back(u);
    return true;
  });
  return out;
}

size_t IntervalLabeling::SizeBytes() const {
  size_t total = sizeof(*this);
  for (const LabelSet& set : labels_) {
    total += sizeof(LabelSet) + set.SizeBytes();
  }
  total += forest_.parent.size() * sizeof(VertexId);
  total += forest_.post.size() * sizeof(uint32_t);
  total += forest_.vertex_of_post.size() * sizeof(VertexId);
  total += forest_.min_post_subtree.size() * sizeof(uint32_t);
  return total;
}

}  // namespace gsr
