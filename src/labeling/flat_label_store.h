#ifndef GSR_LABELING_FLAT_LABEL_STORE_H_
#define GSR_LABELING_FLAT_LABEL_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/paged_array.h"
#include "common/simd.h"
#include "exec/thread_pool.h"
#include "graph/digraph.h"
#include "labeling/label_set.h"

namespace gsr {

/// Read-only view of one vertex's frozen labels (see FlatLabelStore).
/// Mirrors LabelSet's query-side surface so call sites work unchanged
/// against either representation.
class LabelView {
 public:
  LabelView() = default;
  explicit LabelView(std::span<const Interval> intervals)
      : intervals_(intervals) {}

  /// Number of (merged) intervals — the paper's compressed label count.
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }
  std::span<const Interval> intervals() const { return intervals_; }

  /// True when some interval contains `value`. O(log size).
  bool Contains(uint32_t value) const;

  /// Number of post-order values covered — the paper's uncompressed label
  /// count (one singleton per distinct descendant post value).
  uint64_t CoveredValues() const;

  /// Renders as "[1,4] [6,6]" for test diagnostics.
  std::string ToString() const;

 private:
  std::span<const Interval> intervals_;
};

/// The frozen, cache-compact form of a whole labeling: every vertex's
/// normalized interval list packed back-to-back into one contiguous array,
/// addressed through a flat offsets table (SoA).
///
///   offsets_:   [o_0, o_1, ..., o_n]            (n+1 entries, o_0 = 0)
///   intervals_: [v0's intervals | v1's | ... ]  (o_n entries total)
///
/// Vertex v's labels live at intervals_[offsets_[v] .. offsets_[v+1]).
/// Two allocations for the entire index instead of one vector per vertex:
/// Contains is a binary search over a small contiguous range and label
/// enumeration a linear scan, with no per-vertex pointer chase. Mutation
/// stays in LabelSet during construction; Freeze converts once final.
///
/// The two arrays are addressed through spans so the store can either own
/// them (Freeze, owned-copy Deserialize) or borrow them zero-copy from a
/// memory-mapped snapshot section (Deserialize with BorrowContext::borrow;
/// `keepalive_` then pins the mapping). Queries are identical either way.
/// The store is move-only: copying would re-point borrowed views at the
/// wrong owner.
///
/// PAGED mode (Deserialize with BorrowContext::paged): the small offsets
/// table is always copied resident, but the interval array — the bulk of
/// any labeling — stays on disk behind the page cache. A vertex's run is
/// then copied into per-thread scratch on access; answers are identical,
/// memory use is bounded by the cache budget. Spans from Intervals()/
/// View() are valid on the calling thread until its next three paged
/// Intervals() calls (a four-slot scratch ring backs them); Contains()
/// uses separate scratch and never invalidates them.
class FlatLabelStore {
 public:
  FlatLabelStore() = default;
  FlatLabelStore(FlatLabelStore&&) = default;
  FlatLabelStore& operator=(FlatLabelStore&&) = default;
  FlatLabelStore(const FlatLabelStore&) = delete;
  FlatLabelStore& operator=(const FlatLabelStore&) = delete;

  /// Packs sets[v] for every v into the flat layout. Per-vertex copies run
  /// on `pool` when given; the result is identical at any thread count.
  static FlatLabelStore Freeze(std::span<const LabelSet> sets,
                               exec::ThreadPool* pool = nullptr);

  /// Writes the offsets table and packed interval array (snapshot layer).
  void SerializeTo(BinaryWriter& w) const;

  /// Restores a store from `r`. With `ctx.borrow` the arrays stay views
  /// into the reader's buffer (zero-copy mmap load) and `ctx.keepalive`
  /// is retained; otherwise they are copied into owned storage. The
  /// offsets table is validated (monotonic, consistent with the interval
  /// count) so a corrupt-but-checksum-colliding file cannot cause
  /// out-of-bounds reads later.
  static Result<FlatLabelStore> Deserialize(BinaryReader& r,
                                            const BorrowContext& ctx);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  size_t total_intervals() const {
    return paged_intervals_.paged() ? paged_intervals_.count
                                    : intervals_.size();
  }
  bool paged() const { return paged_intervals_.paged(); }

  std::span<const Interval> Intervals(VertexId v) const {
    GSR_DCHECK(v + 1 < offsets_.size());
    if (paged_intervals_.paged()) return PagedRun(v);
    return {intervals_.data() + offsets_[v],
            intervals_.data() + offsets_[v + 1]};
  }

  LabelView View(VertexId v) const { return LabelView(Intervals(v)); }

  /// True when some label of v contains `value` — the Lemma 3.1 lookup.
  /// Dispatches to the active SIMD kernel: a branchless galloping search
  /// that finishes with a vectorized linear scan over the short
  /// candidate run (see src/common/simd.h). The normalized (sorted,
  /// disjoint) interval layout is exactly the kernel's precondition.
  bool Contains(VertexId v, uint32_t value) const {
    GSR_DCHECK(v + 1 < offsets_.size());
    if (paged_intervals_.paged()) return PagedContains(v, value);
    const uint32_t begin = offsets_[v];
    return simd::IntervalContains(intervals_.data() + begin,
                                  offsets_[v + 1] - begin, value);
  }

  /// Bytes referenced by the store (owned heap, borrowed mapping, or
  /// on-disk pages in paged mode).
  size_t SizeBytes() const {
    return offsets_.size() * sizeof(uint32_t) +
           total_intervals() * sizeof(Interval);
  }

 private:
  std::span<const Interval> PagedRun(VertexId v) const;
  bool PagedContains(VertexId v, uint32_t value) const;

  // Query views; alias owned_* when the store owns its memory, or a
  // mapped snapshot buffer pinned by keepalive_ when borrowed. Moves keep
  // the views valid because vector moves transfer the heap buffer.
  std::span<const uint32_t> offsets_;
  std::span<const Interval> intervals_;
  std::vector<uint32_t> owned_offsets_;
  std::vector<Interval> owned_intervals_;
  std::shared_ptr<const void> keepalive_;

  // On-disk backing in paged mode (intervals_ stays empty then; the
  // offsets table is resident in every mode).
  PagedArray<Interval> paged_intervals_;
};

}  // namespace gsr

#endif  // GSR_LABELING_FLAT_LABEL_STORE_H_
