#ifndef GSR_LABELING_LABEL_SET_H_
#define GSR_LABELING_LABEL_SET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace gsr {

/// One interval label [lo, hi] over the post-order-number domain.
struct Interval {
  uint32_t lo = 0;
  uint32_t hi = 0;

  bool Contains(uint32_t value) const { return lo <= value && value <= hi; }

  /// True when this interval fully covers `other`.
  bool Subsumes(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
  friend bool operator<(const Interval& a, const Interval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  }
};

/// Renders intervals as "[1,4] [6,6]" ("(empty)" when none); shared by
/// LabelSet and the frozen LabelView.
std::string IntervalsToString(std::span<const Interval> intervals);

/// The label set L(v) of one vertex: a set of intervals over the
/// post-order domain, kept *normalized* at all times — sorted, disjoint,
/// with overlapping and adjacent intervals merged ([1,4] + [4,5] -> [1,5],
/// and in the dense integer domain [1,3] + [4,5] -> [1,5] too).
///
/// Design note (label accounting): in the literal Algorithm 1 every label
/// created during construction is a singleton [post(u), post(u)]; the
/// compression of lines 25-26 is what merges them. A construction-time set
/// is therefore fully characterized by the post values it covers, which is
/// what this normalized representation stores — with far better constants
/// on vertices with millions of descendants. The paper's *uncompressed*
/// label count is recovered exactly as CoveredValues() (the number of
/// distinct descendant post values, i.e. singletons before compression)
/// and the *compressed* count as size().
class LabelSet {
 public:
  LabelSet() = default;

  /// Number of (merged) intervals — the paper's compressed label count.
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Inserts one interval, merging with any overlapping or adjacent ones.
  /// Returns true when the covered set changed.
  bool Insert(const Interval& interval);

  /// Unions `other` into this set. Returns true when the covered set grew.
  bool UnionWith(const LabelSet& other);

  /// True when some interval contains `value`. O(log size).
  bool Contains(uint32_t value) const;

  /// True when every value covered by `other` is covered by this set.
  bool Covers(const LabelSet& other) const;

  /// Number of post-order values covered — the paper's uncompressed label
  /// count (one singleton per distinct descendant post value).
  uint64_t CoveredValues() const;

  /// Renders as "[1,4] [6,6]" for test diagnostics.
  std::string ToString() const;

  /// Heap bytes used by this set.
  size_t SizeBytes() const { return intervals_.capacity() * sizeof(Interval); }

  /// Releases excess capacity (called once construction finishes).
  void ShrinkToFit() { intervals_.shrink_to_fit(); }

  friend bool operator==(const LabelSet&, const LabelSet&) = default;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace gsr

#endif  // GSR_LABELING_LABEL_SET_H_
