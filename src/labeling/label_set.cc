#include "labeling/label_set.h"

#include <algorithm>

namespace gsr {

namespace {

/// True when `a` and `b` overlap or touch in the dense integer domain.
/// 64-bit arithmetic avoids overflow at hi == UINT32_MAX.
bool MergeableWith(const Interval& a, const Interval& b) {
  return static_cast<uint64_t>(a.lo) <= static_cast<uint64_t>(b.hi) + 1 &&
         static_cast<uint64_t>(b.lo) <= static_cast<uint64_t>(a.hi) + 1;
}

}  // namespace

bool LabelSet::Insert(const Interval& interval) {
  GSR_DCHECK(interval.lo <= interval.hi);
  // First interval that ends at or after (interval.lo - 1): candidates for
  // merging start here.
  const auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const Interval& a, const Interval& b) {
        // a entirely before b, not even adjacent.
        return static_cast<uint64_t>(a.hi) + 1 < b.lo;
      });
  if (first == intervals_.end()) {
    intervals_.push_back(interval);
    return true;
  }
  if (first->Subsumes(interval)) return false;

  // Merge [interval] with the run of mergeable intervals starting at first.
  Interval merged = interval;
  auto last = first;
  while (last != intervals_.end() && MergeableWith(*last, merged)) {
    merged.lo = std::min(merged.lo, last->lo);
    merged.hi = std::max(merged.hi, last->hi);
    ++last;
  }
  if (last == first) {
    // No overlap: plain insertion before `first`.
    intervals_.insert(first, interval);
    return true;
  }
  *first = merged;
  intervals_.erase(first + 1, last);
  return true;
}

bool LabelSet::UnionWith(const LabelSet& other) {
  if (other.empty()) return false;
  if (empty()) {
    intervals_ = other.intervals_;
    return true;
  }
  if (other.size() == 1) return Insert(other.intervals_.front());

  // General case: linear merge of two normalized lists.
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  auto append = [&merged](const Interval& interval) {
    if (!merged.empty() && MergeableWith(merged.back(), interval)) {
      merged.back().lo = std::min(merged.back().lo, interval.lo);
      merged.back().hi = std::max(merged.back().hi, interval.hi);
    } else {
      merged.push_back(interval);
    }
  };
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    if (intervals_[i] < other.intervals_[j]) {
      append(intervals_[i++]);
    } else {
      append(other.intervals_[j++]);
    }
  }
  while (i < intervals_.size()) append(intervals_[i++]);
  while (j < other.intervals_.size()) append(other.intervals_[j++]);

  if (merged == intervals_) return false;
  intervals_ = std::move(merged);
  return true;
}

bool LabelSet::Contains(uint32_t value) const {
  // Normalized: only the last interval with lo <= value can contain it.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), value,
      [](uint32_t v, const Interval& interval) { return v < interval.lo; });
  return it != intervals_.begin() && std::prev(it)->hi >= value;
}

bool LabelSet::Covers(const LabelSet& other) const {
  size_t i = 0;
  for (const Interval& interval : other.intervals_) {
    while (i < intervals_.size() && intervals_[i].hi < interval.lo) ++i;
    if (i == intervals_.size() || !intervals_[i].Subsumes(interval)) {
      return false;
    }
  }
  return true;
}

uint64_t LabelSet::CoveredValues() const {
  uint64_t total = 0;
  for (const Interval& interval : intervals_) {
    total += static_cast<uint64_t>(interval.hi) - interval.lo + 1;
  }
  return total;
}

std::string IntervalsToString(std::span<const Interval> intervals) {
  std::string out;
  for (const Interval& interval : intervals) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += std::to_string(interval.lo);
    out += ',';
    out += std::to_string(interval.hi);
    out += ']';
  }
  return out.empty() ? "(empty)" : out;
}

std::string LabelSet::ToString() const { return IntervalsToString(intervals_); }

}  // namespace gsr
