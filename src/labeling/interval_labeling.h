#ifndef GSR_LABELING_INTERVAL_LABELING_H_
#define GSR_LABELING_INTERVAL_LABELING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/thread_pool.h"
#include "graph/digraph.h"
#include "graph/spanning_forest.h"
#include "labeling/flat_label_store.h"
#include "labeling/label_set.h"

namespace gsr {

/// The interval-based reachability labeling of Agrawal et al., constructed
/// with the paper's forest-based Algorithm 1 (Section 3.2): geosocial
/// networks have many zero-in-degree vertices, so a spanning *forest* is
/// used; tree labels are derived from it; and the non-spanning edges are
/// then processed in ascending post-order of their source (= reverse
/// topological order), each time propagating labels to the forest
/// ancestors of the edge source.
///
/// Implementation notes relative to the literal pseudo-code:
///  - The priority-queue tree phase (lines 7-18) deposits, at each vertex,
///    exactly the singleton labels of its tree descendants — whose post
///    numbers form the contiguous range [min_post_subtree(v), post(v)].
///    We materialize that range directly; the resulting covered set is
///    identical and construction stays linear even on vertices with
///    millions of tree descendants.
///  - Label sets stay normalized throughout (see LabelSet); the
///    uncompressed/compressed accounting of Table 6 is recovered exactly
///    from CoveredValues()/size().
///  - Construction mutates per-vertex LabelSets; the finished labeling is
///    frozen into a FlatLabelStore (offsets + packed interval array), so
///    the query path never chases a per-vertex heap pointer.
///  - With a thread pool, construction is parallelized over spanning trees
///    and post-order ranges with a schedule that provably reproduces the
///    serial result bit-for-bit — including Stats (see DESIGN.md, "Index
///    construction pipeline").
///
/// The input must be a DAG; arbitrary graphs are first condensed (see
/// CondensedNetwork in src/core). Reachability follows Lemma 3.1:
/// GReach(v, u) holds iff some label of v contains post(u).
class IntervalLabeling {
 public:
  struct Options {
    /// Forest strategy (Section 8 future work: shallow forests). Both
    /// strategies yield correct labelings; see ForestStrategy.
    ForestStrategy forest_strategy = ForestStrategy::kDfs;
  };

  /// Label-count accounting reported in Table 6.
  struct Stats {
    /// Singleton labels the literal construction generates before the
    /// compression step: one per distinct descendant post value.
    uint64_t uncompressed_labels = 0;
    /// Interval labels after compression (absorb + merge).
    uint64_t compressed_labels = 0;
    /// Number of non-spanning edges processed.
    uint64_t non_tree_edges = 0;
    /// Number of trees in the spanning forest.
    uint64_t forest_trees = 0;
  };

  /// Builds the labeling for `dag` (must be acyclic). When `pool` is
  /// non-null the tree phase, non-tree-edge propagation and freeze run on
  /// its workers; labels and Stats are identical to the serial build.
  static IntervalLabeling Build(const DiGraph& dag, const Options& options,
                                exec::ThreadPool* pool);
  static IntervalLabeling Build(const DiGraph& dag, const Options& options) {
    return Build(dag, options, nullptr);
  }
  static IntervalLabeling Build(const DiGraph& dag) {
    return Build(dag, Options{}, nullptr);
  }

  /// Writes the forest arrays, Table 6 stats and flat label store
  /// (snapshot layer). The serialized labeling answers queries exactly
  /// like the built one; the forest's non_tree_edges (a construction-only
  /// artifact) are not persisted.
  void SerializeTo(BinaryWriter& w) const;

  /// Restores a labeling from `r`. With `ctx.borrow` the flat label
  /// arrays stay zero-copy views into the reader's buffer; the (small)
  /// forest arrays are always owned copies.
  static Result<IntervalLabeling> Deserialize(BinaryReader& r,
                                              const BorrowContext& ctx);

  VertexId num_vertices() const { return flat_.num_vertices(); }

  /// The 1-based post-order number of `v`.
  uint32_t post(VertexId v) const { return forest_.post[v]; }

  /// The vertex with post-order number `p` (p in 1..n).
  VertexId VertexOfPost(uint32_t p) const { return forest_.vertex_of_post[p]; }

  /// The label set L(v), as a view into the flat store.
  LabelView Labels(VertexId v) const { return flat_.View(v); }

  /// Lemma 3.1: u is reachable from v iff a label of v contains post(u).
  bool CanReach(VertexId v, VertexId u) const {
    return flat_.Contains(v, forest_.post[u]);
  }

  /// Batched Lemma 3.1 probe: bit k set iff v reaches targets[k]
  /// (count <= simd::kMaskWidth). One dispatched kernel call answers the
  /// whole batch — the SpaReach-INT candidate-loop shape.
  uint64_t CanReachMask(VertexId v, const VertexId* targets,
                        size_t count) const {
    uint32_t posts[simd::kMaskWidth];
    for (size_t k = 0; k < count; ++k) posts[k] = forest_.post[targets[k]];
    const auto run = flat_.Intervals(v);
    return simd::IntervalContainsMany(run.data(), run.size(), posts, count);
  }

  /// Arbitrary-count batched Lemma 3.1 probe: out[k] = 1 iff v reaches
  /// targets[k]. The label run of v is fetched once and re-dispatched
  /// against simd::kMaskWidth posts at a time, so a caller holding many
  /// targets (the work-sharing scheduler's grouped SpaReach-INT path)
  /// pays one flat-store lookup for the whole batch.
  void CanReachManyInto(VertexId v, const VertexId* targets, size_t count,
                        uint8_t* out) const {
    const auto run = flat_.Intervals(v);
    uint32_t posts[simd::kMaskWidth];
    for (size_t base = 0; base < count; base += simd::kMaskWidth) {
      const size_t chunk = std::min(simd::kMaskWidth, count - base);
      for (size_t k = 0; k < chunk; ++k) {
        posts[k] = forest_.post[targets[base + k]];
      }
      const uint64_t mask =
          simd::IntervalContainsMany(run.data(), run.size(), posts, chunk);
      for (size_t k = 0; k < chunk; ++k) {
        out[base + k] = static_cast<uint8_t>((mask >> k) & 1);
      }
    }
  }

  /// Enumerates the descendants D(v) (including v itself, Equation 1),
  /// calling `fn(vertex)` until it returns false. Each label [l,h] is a
  /// relational range scan over the post -> vertex array. Returns true
  /// when stopped early.
  template <typename Fn>
  bool ForEachDescendant(VertexId v, Fn&& fn) const {
    for (const Interval& interval : flat_.Intervals(v)) {
      for (uint32_t p = interval.lo; p <= interval.hi; ++p) {
        if (!fn(forest_.vertex_of_post[p])) return true;
      }
    }
    return false;
  }

  /// Materializes D(v) including v itself.
  std::vector<VertexId> Descendants(VertexId v) const;

  /// The spanning forest the labeling was built on (exposed for tests).
  const SpanningForest& forest() const { return forest_; }

  /// The frozen label storage (exposed for tests and size accounting).
  const FlatLabelStore& flat_store() const { return flat_; }

  const Stats& stats() const { return stats_; }

  /// Main-memory footprint of the labeling in bytes (labels + post arrays).
  size_t SizeBytes() const;

 private:
  IntervalLabeling() = default;

  SpanningForest forest_;
  FlatLabelStore flat_;
  Stats stats_;
};

}  // namespace gsr

#endif  // GSR_LABELING_INTERVAL_LABELING_H_
