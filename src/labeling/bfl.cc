#include "labeling/bfl.h"

#include <algorithm>

#include "common/check.h"
#include "common/simd.h"
#include "graph/traversal.h"

namespace gsr {

namespace {

/// SplitMix64 finalizer: maps a vertex id to its Bloom bit.
uint64_t HashVertex(VertexId v) {
  uint64_t x = static_cast<uint64_t>(v) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

BflIndex BflIndex::Build(const DiGraph* dag, const Options& options) {
  GSR_CHECK(dag != nullptr);
  GSR_CHECK(options.filter_words >= 1);
  BflIndex index;
  index.filter_words_ = options.filter_words;
  index.dag_ = dag;
  index.forest_ = BuildSpanningForest(*dag);

  const VertexId n = dag->num_vertices();
  const uint32_t words = options.filter_words;
  const uint32_t bits = words * 64;
  index.out_filters_.assign(static_cast<size_t>(n) * words, 0);
  index.in_filters_.assign(static_cast<size_t>(n) * words, 0);

  const std::vector<VertexId> topo = TopologicalOrder(*dag);
  GSR_CHECK(n == 0 || !topo.empty());  // BFL requires a DAG.

  auto set_bit = [&](std::vector<uint64_t>& filters, VertexId v) {
    const uint32_t bit = static_cast<uint32_t>(HashVertex(v) % bits);
    filters[static_cast<size_t>(v) * words + bit / 64] |= 1ULL << (bit % 64);
  };
  auto merge_into = [&](std::vector<uint64_t>& filters, VertexId dst,
                        VertexId src) {
    for (uint32_t w = 0; w < words; ++w) {
      filters[static_cast<size_t>(dst) * words + w] |=
          filters[static_cast<size_t>(src) * words + w];
    }
  };

  // Out-sets: successors must be finished first -> reverse topological.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const VertexId v = *it;
    set_bit(index.out_filters_, v);
    for (const VertexId w : dag->OutNeighbors(v)) {
      merge_into(index.out_filters_, v, w);
    }
  }
  // In-sets: predecessors first -> topological order.
  for (const VertexId v : topo) {
    set_bit(index.in_filters_, v);
    for (const VertexId w : dag->OutNeighbors(v)) {
      merge_into(index.in_filters_, w, v);
    }
  }
  return index;
}

bool BflIndex::FilterContains(const std::vector<uint64_t>& filters, VertexId a,
                              VertexId b) const {
  const uint64_t* fa = filters.data() + static_cast<size_t>(a) * filter_words_;
  const uint64_t* fb = filters.data() + static_cast<size_t>(b) * filter_words_;
  // Subset test fb ⊆ fa as wide andnot+test (see src/common/simd.h).
  return simd::Subset64(fa, fb, filter_words_);
}

bool BflIndex::CanReach(VertexId from, VertexId to,
                        SearchScratch& scratch) const {
  if (InSubtree(from, to)) {
    ++scratch.counters.tree_hits;
    return true;
  }
  // u reaches v  =>  out(u) ⊇ out(v) and in(v) ⊇ in(u); the contrapositive
  // gives instant negatives.
  if (!FilterContains(out_filters_, from, to) ||
      !FilterContains(in_filters_, to, from)) {
    ++scratch.counters.filter_rejects;
    return false;
  }
  ++scratch.counters.dfs_fallbacks;
  return PrunedDfs(from, to, scratch);
}

bool BflIndex::PrunedDfs(VertexId from, VertexId to,
                         SearchScratch& scratch) const {
  const size_t n = forest_.post.size();
  if (scratch.mark.size() != n) {
    scratch.mark.assign(n, 0);
    scratch.epoch = 0;
  }
  if (++scratch.epoch == 0) {
    std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
    scratch.epoch = 1;
  }
  scratch.stack.clear();
  scratch.stack.push_back(from);
  scratch.mark[from] = scratch.epoch;
  const uint64_t* out_to =
      out_filters_.data() + static_cast<size_t>(to) * filter_words_;
  const uint64_t* in_to =
      in_filters_.data() + static_cast<size_t>(to) * filter_words_;
  while (!scratch.stack.empty()) {
    const VertexId v = scratch.stack.back();
    scratch.stack.pop_back();
    if (InSubtree(v, to)) return true;  // Covers v == to as well.
    // Both Bloom prunes for the whole neighbor span in one dispatched
    // kernel call; bits are then consumed in span order, so marks and
    // pushes land exactly as the per-neighbor loop produced them. The
    // kernel also tests already-marked neighbors — wasted lanes are
    // cheaper than a data-dependent branch per candidate.
    const std::span<const VertexId> neighbors = dag_->OutNeighbors(v);
    for (size_t base = 0; base < neighbors.size();
         base += simd::kMaskWidth) {
      const size_t chunk =
          std::min(simd::kMaskWidth, neighbors.size() - base);
      const uint64_t survivors = simd::BflPruneMask(
          out_filters_.data(), in_filters_.data(), filter_words_,
          neighbors.data() + base, chunk, out_to, in_to);
      for (size_t k = 0; k < chunk; ++k) {
        const VertexId w = neighbors[base + k];
        if (scratch.mark[w] == scratch.epoch) continue;
        scratch.mark[w] = scratch.epoch;
        // Prune w when its labels prove it cannot reach `to`.
        if (((survivors >> k) & 1) == 0) continue;
        scratch.stack.push_back(w);
      }
    }
  }
  return false;
}

void BflIndex::SerializeTo(BinaryWriter& w) const {
  w.WriteU32(filter_words_);
  SerializeSpanningForest(forest_, w);
  w.WriteVector(out_filters_);
  w.WriteVector(in_filters_);
}

Result<BflIndex> BflIndex::Deserialize(BinaryReader& r, const DiGraph* dag) {
  BflIndex index;
  index.dag_ = dag;
  GSR_RETURN_IF_ERROR(r.ReadU32(&index.filter_words_));
  if (index.filter_words_ == 0) {
    return Status::InvalidArgument("BFL: filter_words must be positive");
  }
  auto forest = DeserializeSpanningForest(r);
  if (!forest.ok()) return forest.status();
  index.forest_ = std::move(forest).value();
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.out_filters_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.in_filters_));
  const size_t expected =
      index.forest_.post.size() * static_cast<size_t>(index.filter_words_);
  if (index.out_filters_.size() != expected ||
      index.in_filters_.size() != expected ||
      (dag != nullptr && index.forest_.post.size() != dag->num_vertices())) {
    return Status::InvalidArgument("BFL: filter arrays disagree with forest");
  }
  return index;
}

size_t BflIndex::SizeBytes() const {
  size_t total = sizeof(*this);
  total += (out_filters_.size() + in_filters_.size()) * sizeof(uint64_t);
  total += forest_.parent.size() * sizeof(VertexId);
  total += forest_.post.size() * sizeof(uint32_t);
  total += forest_.vertex_of_post.size() * sizeof(VertexId);
  total += forest_.min_post_subtree.size() * sizeof(uint32_t);
  return total;
}

}  // namespace gsr
