#include "labeling/observations.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace gsr {

namespace {

/// One randomized DFS over the whole DAG: every vertex gets a post-order
/// number in [1, n], children are visited in CSR order rotated by a
/// per-vertex pseudo-random offset and start vertices follow `starts`.
/// Any DFS post-order of a DAG satisfies post[v] < post[u] for every
/// edge u -> v (v can never be on the active stack when the edge is
/// explored — that would close a cycle), which is what the interval
/// containment test relies on.
void RandomizedDfsPost(const DiGraph& dag, std::span<const VertexId> starts,
                       uint64_t salt, std::vector<uint32_t>& post) {
  const VertexId n = dag.num_vertices();
  post.assign(n, 0);
  std::vector<uint8_t> visited(n, 0);
  // Frame: (vertex, next child slot); the rotation offset is recomputed
  // from the salt, so frames stay two words.
  std::vector<std::pair<VertexId, uint32_t>> stack;
  uint32_t counter = 0;
  auto rotation = [salt](VertexId v, uint32_t degree) -> uint32_t {
    if (degree <= 1) return 0;
    uint64_t h = (static_cast<uint64_t>(v) + 1) * 0x9E3779B97F4A7C15ULL ^ salt;
    h ^= h >> 29;
    return static_cast<uint32_t>(h % degree);
  };
  for (const VertexId start : starts) {
    if (visited[start]) continue;
    visited[start] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto out = dag.OutNeighbors(v);
      const uint32_t degree = static_cast<uint32_t>(out.size());
      if (next == degree) {
        post[v] = ++counter;
        stack.pop_back();
        continue;
      }
      const uint32_t slot = (next + rotation(v, degree)) % degree;
      ++next;
      const VertexId child = out[slot];
      if (!visited[child]) {
        visited[child] = 1;
        stack.emplace_back(child, 0);
      }
    }
  }
}

}  // namespace

Observations Observations::Build(const DiGraph& dag,
                                 std::span<const uint8_t> has_spatial,
                                 std::span<const Point2D> rep_point,
                                 const Options& options) {
  const VertexId n = dag.num_vertices();
  GSR_CHECK(has_spatial.size() == n);
  GSR_CHECK(rep_point.size() == n);
  GSR_CHECK(options.num_supportive <= 32);
  Observations obs;
  obs.num_components_ = n;
  obs.num_intervals_ = options.num_intervals;
  Rng rng(options.seed);

  // Random-tie-break topological rank: Kahn's algorithm, ready vertices
  // popped by seeded random priority. Every edge u -> v yields
  // rank[u] < rank[v]; the tie-breaks make the order independent of the
  // (already topological) id order.
  obs.rank_.assign(n, 0);
  {
    std::vector<uint64_t> priority(n);
    for (VertexId v = 0; v < n; ++v) priority[v] = rng.NextUint64();
    std::vector<uint32_t> pending_in(n);
    using Entry = std::pair<uint64_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ready;
    for (VertexId v = 0; v < n; ++v) {
      pending_in[v] = dag.InDegree(v);
      if (pending_in[v] == 0) ready.emplace(priority[v], v);
    }
    uint32_t next_rank = 0;
    while (!ready.empty()) {
      const VertexId v = ready.top().second;
      ready.pop();
      obs.rank_[v] = next_rank++;
      for (const VertexId w : dag.OutNeighbors(v)) {
        if (--pending_in[w] == 0) ready.emplace(priority[w], w);
      }
    }
    GSR_CHECK(next_rank == n);  // The condensation is acyclic.
  }

  // GRAIL intervals: per randomized DFS, post numbers plus
  // lo[c] = min post over the reachable set of c. Ascending id order is
  // reverse-topological (out-neighbors have smaller ids), so the lo
  // minimization is a single linear pass.
  obs.grail_lo_.assign(static_cast<size_t>(obs.num_intervals_) * n, 0);
  obs.grail_post_.assign(static_cast<size_t>(obs.num_intervals_) * n, 0);
  {
    std::vector<VertexId> starts(n);
    for (VertexId v = 0; v < n; ++v) starts[v] = v;
    std::vector<uint32_t> post;
    for (uint32_t i = 0; i < obs.num_intervals_; ++i) {
      // Fisher-Yates start order, fresh per traversal.
      for (VertexId v = n; v > 1; --v) {
        std::swap(starts[v - 1], starts[rng.NextBounded(v)]);
      }
      RandomizedDfsPost(dag, starts, rng.NextUint64(), post);
      const size_t base = static_cast<size_t>(i) * n;
      for (VertexId c = 0; c < n; ++c) {
        uint32_t lo = post[c];
        for (const VertexId w : dag.OutNeighbors(c)) {
          lo = std::min(lo, obs.grail_lo_[base + w]);
        }
        obs.grail_lo_[base + c] = lo;
        obs.grail_post_[base + c] = post[c];
      }
    }
  }

  // Supportive vertices: the top-k components by (in+1)*(out+1) degree
  // product — the pairs they settle are the ones routed through hubs,
  // which is most pairs on scale-free social graphs. Forward and
  // backward BFS from each computes the exact reach sets as bitmasks.
  obs.fwd_mask_.assign(n, 0);
  obs.bwd_mask_.assign(n, 0);
  {
    const uint32_t k =
        std::min<uint32_t>(options.num_supportive, static_cast<uint32_t>(n));
    std::vector<std::pair<uint64_t, VertexId>> score(n);
    for (VertexId v = 0; v < n; ++v) {
      score[v] = {static_cast<uint64_t>(dag.InDegree(v) + 1) *
                      (dag.OutDegree(v) + 1),
                  v};
    }
    std::partial_sort(score.begin(), score.begin() + k, score.end(),
                      [](const auto& a, const auto& b) {
                        return a.first != b.first ? a.first > b.first
                                                  : a.second < b.second;
                      });
    std::vector<VertexId> frontier;
    for (uint32_t s = 0; s < k; ++s) {
      const VertexId root = score[s].second;
      const uint32_t bit = uint32_t{1} << s;
      // Forward: everything root reaches gets fwd bit s ("s reaches c").
      frontier.assign(1, root);
      obs.fwd_mask_[root] |= bit;
      while (!frontier.empty()) {
        const VertexId v = frontier.back();
        frontier.pop_back();
        for (const VertexId w : dag.OutNeighbors(v)) {
          if ((obs.fwd_mask_[w] & bit) == 0) {
            obs.fwd_mask_[w] |= bit;
            frontier.push_back(w);
          }
        }
      }
      // Backward: everything reaching root gets bwd bit s ("c reaches s").
      frontier.assign(1, root);
      obs.bwd_mask_[root] |= bit;
      while (!frontier.empty()) {
        const VertexId v = frontier.back();
        frontier.pop_back();
        for (const VertexId w : dag.InNeighbors(v)) {
          if ((obs.bwd_mask_[w] & bit) == 0) {
            obs.bwd_mask_[w] |= bit;
            frontier.push_back(w);
          }
        }
      }
    }
    obs.num_supportive_ = k;
  }

  // Spatial reachability + witness points, by the same reverse-topo
  // linear pass: a component reaches a spatial vertex iff it has one
  // itself or any out-neighbor does; the witness is its own member
  // point when it has one, else the first witnessing neighbor's.
  obs.reaches_spatial_.assign(n, 0);
  obs.witness_.assign(n, Point2D{});
  for (VertexId c = 0; c < n; ++c) {
    if (has_spatial[c]) {
      obs.reaches_spatial_[c] = 1;
      obs.witness_[c] = rep_point[c];
      continue;
    }
    for (const VertexId w : dag.OutNeighbors(c)) {
      if (obs.reaches_spatial_[w]) {
        obs.reaches_spatial_[c] = 1;
        obs.witness_[c] = obs.witness_[w];
        break;
      }
    }
  }
  return obs;
}

size_t Observations::SizeBytes() const {
  return rank_.size() * sizeof(uint32_t) +
         grail_lo_.size() * sizeof(uint32_t) +
         grail_post_.size() * sizeof(uint32_t) +
         fwd_mask_.size() * sizeof(uint32_t) +
         bwd_mask_.size() * sizeof(uint32_t) +
         reaches_spatial_.size() * sizeof(uint8_t) +
         witness_.size() * sizeof(Point2D);
}

void Observations::SerializeTo(BinaryWriter& w) const {
  w.WriteU32(num_components_);
  w.WriteU32(num_intervals_);
  w.WriteU32(num_supportive_);
  w.WriteVector(rank_);
  w.WriteVector(grail_lo_);
  w.WriteVector(grail_post_);
  w.WriteVector(fwd_mask_);
  w.WriteVector(bwd_mask_);
  w.WriteVector(reaches_spatial_);
  w.WriteVector(witness_);
}

Result<Observations> Observations::Deserialize(BinaryReader& r) {
  Observations obs;
  GSR_RETURN_IF_ERROR(r.ReadU32(&obs.num_components_));
  GSR_RETURN_IF_ERROR(r.ReadU32(&obs.num_intervals_));
  GSR_RETURN_IF_ERROR(r.ReadU32(&obs.num_supportive_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.rank_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.grail_lo_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.grail_post_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.fwd_mask_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.bwd_mask_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.reaches_spatial_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&obs.witness_));
  const size_t n = obs.num_components_;
  if (obs.num_supportive_ > 32 || obs.rank_.size() != n ||
      obs.grail_lo_.size() != obs.num_intervals_ * n ||
      obs.grail_post_.size() != obs.num_intervals_ * n ||
      obs.fwd_mask_.size() != n || obs.bwd_mask_.size() != n ||
      obs.reaches_spatial_.size() != n || obs.witness_.size() != n) {
    return Status::InvalidArgument("observations snapshot: bad array sizes");
  }
  return obs;
}

}  // namespace gsr
