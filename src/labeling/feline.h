#ifndef GSR_LABELING_FELINE_H_
#define GSR_LABELING_FELINE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace gsr {

/// Feline reachability index (Veloso et al. [59]), the second scheme the
/// original GeoReach paper pairs with its spatial-first baseline
/// (SpaReach-Feline).
///
/// Every vertex gets two coordinates, each a topological rank computed
/// with an opposite tie-breaking policy so the orders disagree as much as
/// possible. If u reaches v then u dominates v in *both* coordinates, so
/// a non-dominated pair is an instant negative; dominated pairs fall back
/// to a DFS that only expands dominated children (Label+G). Always exact.
///
/// The input must be a DAG and must outlive the index (DFS fallback).
class FelineIndex {
 public:
  /// Builds the index over `dag`.
  static FelineIndex Build(const DiGraph* dag);

  /// True iff `to` is reachable from `from` (reflexive).
  bool CanReach(VertexId from, VertexId to) const;

  /// The two topological coordinates of v (exposed for tests).
  uint32_t XCoord(VertexId v) const { return x_[v]; }
  uint32_t YCoord(VertexId v) const { return y_[v]; }

  /// Counters observing how queries were answered.
  struct QueryCounters {
    uint64_t dominance_rejects = 0;  // Answered negatively by coordinates.
    uint64_t dfs_fallbacks = 0;      // Needed the guided DFS.
  };
  const QueryCounters& counters() const { return counters_; }
  void ResetCounters() const { counters_ = QueryCounters{}; }

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const {
    return sizeof(*this) + (x_.size() + y_.size()) * sizeof(uint32_t);
  }

 private:
  FelineIndex() = default;

  bool Dominates(VertexId u, VertexId v) const {
    return x_[u] <= x_[v] && y_[u] <= y_[v];
  }

  bool GuidedDfs(VertexId from, VertexId to) const;

  const DiGraph* dag_ = nullptr;
  std::vector<uint32_t> x_;  // Topological rank, min-id tie-breaking.
  std::vector<uint32_t> y_;  // Topological rank, max-id tie-breaking.

  // DFS scratch, epoch-stamped (queries are single-threaded).
  mutable std::vector<uint32_t> mark_;
  mutable std::vector<VertexId> stack_;
  mutable uint32_t epoch_ = 0;
  mutable QueryCounters counters_;
};

}  // namespace gsr

#endif  // GSR_LABELING_FELINE_H_
