#ifndef GSR_LABELING_FELINE_H_
#define GSR_LABELING_FELINE_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "graph/digraph.h"

namespace gsr {

/// Feline reachability index (Veloso et al. [59]), the second scheme the
/// original GeoReach paper pairs with its spatial-first baseline
/// (SpaReach-Feline).
///
/// Every vertex gets two coordinates, each a topological rank computed
/// with an opposite tie-breaking policy so the orders disagree as much as
/// possible. If u reaches v then u dominates v in *both* coordinates, so
/// a non-dominated pair is an instant negative; dominated pairs fall back
/// to a DFS that only expands dominated children (Label+G). Always exact.
///
/// The input must be a DAG and must outlive the index (DFS fallback).
/// The index is immutable after Build; the guided DFS keeps its visited
/// marks in a SearchScratch, so queries run concurrently when each thread
/// passes its own scratch. The two-argument CanReach uses an index-owned
/// scratch and stays single-threaded.
class FelineIndex {
 public:
  /// Builds the index over `dag`.
  static FelineIndex Build(const DiGraph* dag);

  /// Writes both coordinate arrays (snapshot layer).
  void SerializeTo(BinaryWriter& w) const;

  /// Restores an index from `r`, rebinding the guided-DFS fallback to
  /// `dag` — which must be the graph the index was built over.
  static Result<FelineIndex> Deserialize(BinaryReader& r, const DiGraph* dag);

  /// Counters observing how queries were answered.
  struct QueryCounters {
    uint64_t dominance_rejects = 0;  // Answered negatively by coordinates.
    uint64_t dfs_fallbacks = 0;      // Needed the guided DFS.
  };

  /// Per-thread DFS state (epoch-stamped marks + stack) and counters.
  /// Sized lazily on first use.
  struct SearchScratch {
    std::vector<uint32_t> mark;
    std::vector<VertexId> stack;
    uint32_t epoch = 0;
    QueryCounters counters;
  };

  /// True iff `to` is reachable from `from` (reflexive). Touches no index
  /// state except through `scratch`; thread-safe with one per thread.
  bool CanReach(VertexId from, VertexId to, SearchScratch& scratch) const;

  /// Single-threaded convenience overload on the index-owned scratch.
  bool CanReach(VertexId from, VertexId to) const {
    return CanReach(from, to, scratch_);
  }

  /// The two topological coordinates of v (exposed for tests).
  uint32_t XCoord(VertexId v) const { return x_[v]; }
  uint32_t YCoord(VertexId v) const { return y_[v]; }

  const QueryCounters& counters() const { return scratch_.counters; }
  void ResetCounters() const { scratch_.counters = QueryCounters{}; }

  /// Folds counters accumulated in an external scratch into counters()
  /// and zeroes them in `scratch`. Callers serialize.
  void DrainScratchCounters(SearchScratch& scratch) const {
    if (&scratch == &scratch_) return;
    scratch_.counters.dominance_rejects += scratch.counters.dominance_rejects;
    scratch_.counters.dfs_fallbacks += scratch.counters.dfs_fallbacks;
    scratch.counters = QueryCounters{};
  }

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const {
    return sizeof(*this) + (x_.size() + y_.size()) * sizeof(uint32_t);
  }

 private:
  FelineIndex() = default;

  bool Dominates(VertexId u, VertexId v) const {
    return x_[u] <= x_[v] && y_[u] <= y_[v];
  }

  bool GuidedDfs(VertexId from, VertexId to, SearchScratch& scratch) const;

  const DiGraph* dag_ = nullptr;
  std::vector<uint32_t> x_;  // Topological rank, min-id tie-breaking.
  std::vector<uint32_t> y_;  // Topological rank, max-id tie-breaking.

  // Scratch behind the single-threaded CanReach overload.
  mutable SearchScratch scratch_;
};

}  // namespace gsr

#endif  // GSR_LABELING_FELINE_H_
