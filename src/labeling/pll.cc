#include "labeling/pll.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace gsr {

namespace {

/// Sorted-vector intersection test (both sorted ascending).
bool IntersectsSorted(std::span<const uint32_t> a,
                      std::span<const uint32_t> b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

PllIndex PllIndex::Build(const DiGraph& dag) {
  const VertexId n = dag.num_vertices();
  PllIndex index;

  // Hub order: descending (in+1)*(out+1) degree product, ties by id —
  // the standard heuristic putting well-connected vertices first.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&dag](VertexId a, VertexId b) {
    const uint64_t score_a = static_cast<uint64_t>(dag.InDegree(a) + 1) *
                             (dag.OutDegree(a) + 1);
    const uint64_t score_b = static_cast<uint64_t>(dag.InDegree(b) + 1) *
                             (dag.OutDegree(b) + 1);
    if (score_a != score_b) return score_a > score_b;
    return a < b;
  });
  index.rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) index.rank_[order[r]] = r;

  // Mutable per-vertex label lists during construction.
  std::vector<std::vector<uint32_t>> in_labels(n);
  std::vector<std::vector<uint32_t>> out_labels(n);

  auto covered = [&](VertexId from, VertexId to) {
    return IntersectsSorted(out_labels[from], in_labels[to]);
  };

  std::vector<uint32_t> mark(n, 0);
  uint32_t epoch = 0;
  std::vector<VertexId> queue;

  for (uint32_t r = 0; r < n; ++r) {
    const VertexId hub = order[r];

    // Forward pruned BFS: hub covers its descendants via L_in.
    ++epoch;
    queue.clear();
    queue.push_back(hub);
    mark[hub] = epoch;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      // Prune when an earlier hub already covers (hub, u); the hub itself
      // always records its own rank.
      if (u != hub && covered(hub, u)) continue;
      in_labels[u].push_back(r);
      for (const VertexId w : dag.OutNeighbors(u)) {
        if (mark[w] != epoch) {
          mark[w] = epoch;
          queue.push_back(w);
        }
      }
    }

    // Backward pruned BFS: hub covers its ancestors via L_out.
    ++epoch;
    queue.clear();
    queue.push_back(hub);
    mark[hub] = epoch;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      if (u != hub && covered(u, hub)) continue;
      out_labels[u].push_back(r);
      for (const VertexId w : dag.InNeighbors(u)) {
        if (mark[w] != epoch) {
          mark[w] = epoch;
          queue.push_back(w);
        }
      }
    }
  }

  // Freeze into CSR storage.
  auto freeze = [n](const std::vector<std::vector<uint32_t>>& lists,
                    std::vector<uint64_t>& offsets,
                    std::vector<uint32_t>& flat) {
    offsets.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      offsets[v + 1] = offsets[v] + lists[v].size();
    }
    flat.reserve(offsets[n]);
    for (VertexId v = 0; v < n; ++v) {
      flat.insert(flat.end(), lists[v].begin(), lists[v].end());
    }
  };
  freeze(in_labels, index.in_offsets_, index.in_labels_);
  freeze(out_labels, index.out_offsets_, index.out_labels_);
  return index;
}

bool PllIndex::CanReach(VertexId from, VertexId to) const {
  GSR_DCHECK(from < rank_.size() && to < rank_.size());
  return IntersectsSorted(OutLabels(from), InLabels(to));
}

void PllIndex::SerializeTo(BinaryWriter& w) const {
  w.WriteVector(rank_);
  w.WriteVector(in_offsets_);
  w.WriteVector(in_labels_);
  w.WriteVector(out_offsets_);
  w.WriteVector(out_labels_);
}

Result<PllIndex> PllIndex::Deserialize(BinaryReader& r) {
  PllIndex index;
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.rank_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.in_offsets_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.in_labels_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.out_offsets_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.out_labels_));
  const size_t n = index.rank_.size();
  const auto csr_ok = [n](const std::vector<uint64_t>& offsets,
                          const std::vector<uint32_t>& labels) {
    if (offsets.size() != (n == 0 ? 0 : n + 1)) return n == 0 && labels.empty();
    if (offsets.front() != 0 || offsets.back() != labels.size()) return false;
    for (size_t v = 0; v + 1 < offsets.size(); ++v) {
      if (offsets[v] > offsets[v + 1]) return false;
    }
    return true;
  };
  if (!csr_ok(index.in_offsets_, index.in_labels_) ||
      !csr_ok(index.out_offsets_, index.out_labels_)) {
    return Status::InvalidArgument("PLL: label CSR storage is inconsistent");
  }
  return index;
}

uint64_t PllIndex::TotalLabels() const {
  return in_labels_.size() + out_labels_.size();
}

size_t PllIndex::SizeBytes() const {
  return sizeof(*this) + rank_.size() * sizeof(uint32_t) +
         (in_offsets_.size() + out_offsets_.size()) * sizeof(uint64_t) +
         (in_labels_.size() + out_labels_.size()) * sizeof(uint32_t);
}

}  // namespace gsr
