#ifndef GSR_LABELING_OBSERVATIONS_H_
#define GSR_LABELING_OBSERVATIONS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "geometry/geometry.h"
#include "graph/digraph.h"
#include "graph/scc.h"

namespace gsr {

/// O(1) observation pre-checks over a condensation DAG, in the spirit of
/// O'Reach: a bundle of cheap, build-once structures that settle most
/// CanReach(u, v) pairs — and most whole RangeReach queries — without
/// touching any index. Every test is a *proof*, never a heuristic: a kNo
/// or kYes verdict is exact, and kUnknown means "fall through to the real
/// method". Wired in front of the label probes, Bloom prunes and R-tree
/// descents, and consulted by the cost-based query planner.
///
/// The observations, per component c of the DAG:
///  - The component ids themselves: ComputeScc guarantees an edge
///    c1 -> c2 implies c1 > c2, so u can only reach v when u >= v.
///  - One extra random-tie-break topological rank (Kahn with seeded
///    random priorities): u reaches v implies rank[u] < rank[v]. An
///    order independent of the id order, so it rejects different pairs.
///  - A handful of GRAIL-style (lo, post] intervals from randomized DFS
///    orders: u reaches v implies lo_i[u] <= lo_i[v] and
///    post_i[v] <= post_i[u] for every traversal i.
///  - Supportive vertices: k high-centrality components s with fully
///    known forward/backward reach sets, packed as per-component
///    bitmasks. A shared s with u -> s -> v proves kYes; a witness s
///    that reaches u but not v (or is reached by v but not u) proves
///    kNo.
///  - Spatial reachability: whether c reaches *any* component with a
///    spatial member, plus one concrete reachable witness point. These
///    settle whole RangeReach queries: no spatial descendant means NO
///    for every region and every query kind; a witness point inside the
///    region means YES for the boolean kinds.
class Observations {
 public:
  struct Options {
    /// GRAIL interval pairs from independent randomized DFS orders.
    uint32_t num_intervals = 2;
    /// Supportive vertices (<= 32; masks are packed into one uint32).
    uint32_t num_supportive = 16;
    /// Seed for every randomized choice; equal seeds build identical
    /// observations at any thread count.
    uint64_t seed = 0x0B5E5EEDULL;
  };

  enum class Verdict : uint8_t { kNo, kYes, kUnknown };

  /// Builds the observations for `dag` (a condensation: edges must go
  /// from larger to smaller component ids). `has_spatial[c]` flags
  /// components owning spatial members and `rep_point[c]` holds one
  /// member point for each flagged component (ignored otherwise).
  static Observations Build(const DiGraph& dag,
                            std::span<const uint8_t> has_spatial,
                            std::span<const Point2D> rep_point,
                            const Options& options);

  /// O(1) tri-state reachability test for component pair (u, v).
  Verdict TestReach(ComponentId u, ComponentId v) const {
    if (u == v) return Verdict::kYes;
    if (u < v) return Verdict::kNo;  // Ids are reverse-topological.
    // Supportive positive: some s with u -> s and s -> v.
    if ((bwd_mask_[u] & fwd_mask_[v]) != 0) return Verdict::kYes;
    // Supportive negatives: s -> u but not s -> v would contradict
    // u -> v (fwd sets only grow along edges); dually for v -> s.
    if ((fwd_mask_[u] & ~fwd_mask_[v]) != 0) return Verdict::kNo;
    if ((bwd_mask_[v] & ~bwd_mask_[u]) != 0) return Verdict::kNo;
    // Independent topological order.
    if (rank_[u] > rank_[v]) return Verdict::kNo;
    // GRAIL interval containment, one pair per randomized DFS.
    const uint32_t n = num_intervals_;
    for (uint32_t i = 0; i < n; ++i) {
      const size_t iu = static_cast<size_t>(i) * num_components_ + u;
      const size_t iv = static_cast<size_t>(i) * num_components_ + v;
      if (grail_lo_[iu] > grail_lo_[iv] || grail_post_[iv] > grail_post_[iu]) {
        return Verdict::kNo;
      }
    }
    return Verdict::kUnknown;
  }

  /// True when component `c` reaches at least one spatial vertex.
  bool ReachesAnySpatial(ComponentId c) const {
    return reaches_spatial_[c] != 0;
  }

  /// Whole-query settle for RangeReach(v in c, region): kNo when c
  /// provably reaches no spatial vertex at all (settles *every* query
  /// kind with the empty answer), kYes when c's witness point — a point
  /// of a concrete reachable spatial vertex — lies inside the region
  /// (settles the boolean kinds; count/enum must still enumerate).
  Verdict SettleRange(ComponentId c, const Rect& region) const {
    if (reaches_spatial_[c] == 0) return Verdict::kNo;
    if (region.Contains(witness_[c])) return Verdict::kYes;
    return Verdict::kUnknown;
  }

  uint32_t num_components() const { return num_components_; }
  uint32_t num_intervals() const { return num_intervals_; }
  uint32_t num_supportive() const { return num_supportive_; }

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const;

  /// Snapshot layer: writes every array; Deserialize restores an
  /// identical (owned) instance.
  void SerializeTo(BinaryWriter& w) const;
  static Result<Observations> Deserialize(BinaryReader& r);

 private:
  // The planner embeds an Observations by value and fills it after its
  // members are built, so it may default-construct one.
  friend class PlannedMethod;

  Observations() = default;

  uint32_t num_components_ = 0;
  uint32_t num_intervals_ = 0;
  uint32_t num_supportive_ = 0;
  std::vector<uint32_t> rank_;        // Random-tie-break topological rank.
  std::vector<uint32_t> grail_lo_;    // num_intervals x num_components.
  std::vector<uint32_t> grail_post_;  // num_intervals x num_components.
  std::vector<uint32_t> fwd_mask_;    // Bit s: supportive s reaches c.
  std::vector<uint32_t> bwd_mask_;    // Bit s: c reaches supportive s.
  std::vector<uint8_t> reaches_spatial_;
  std::vector<Point2D> witness_;  // Valid where reaches_spatial_.
};

}  // namespace gsr

#endif  // GSR_LABELING_OBSERVATIONS_H_
