#include "labeling/feline.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/check.h"

namespace gsr {

namespace {

/// Kahn's algorithm with a priority queue over the ready set; `prefer_max`
/// flips the tie-breaking so the two produced orders disagree wherever the
/// DAG leaves freedom.
std::vector<uint32_t> TopologicalRank(const DiGraph& dag, bool prefer_max) {
  const VertexId n = dag.num_vertices();
  std::vector<uint32_t> in_degree(n);
  std::vector<uint32_t> rank(n, 0);

  auto push_order = [prefer_max](VertexId a, VertexId b) {
    return prefer_max ? a < b : a > b;  // priority_queue pops the "largest".
  };
  std::priority_queue<VertexId, std::vector<VertexId>,
                      std::function<bool(VertexId, VertexId)>>
      ready(push_order);

  for (VertexId v = 0; v < n; ++v) {
    in_degree[v] = dag.InDegree(v);
    if (in_degree[v] == 0) ready.push(v);
  }
  uint32_t next_rank = 0;
  while (!ready.empty()) {
    const VertexId v = ready.top();
    ready.pop();
    rank[v] = next_rank++;
    for (const VertexId w : dag.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  GSR_CHECK(next_rank == n);  // Feline requires a DAG.
  return rank;
}

}  // namespace

FelineIndex FelineIndex::Build(const DiGraph* dag) {
  GSR_CHECK(dag != nullptr);
  FelineIndex index;
  index.dag_ = dag;
  index.x_ = TopologicalRank(*dag, /*prefer_max=*/false);
  index.y_ = TopologicalRank(*dag, /*prefer_max=*/true);
  index.mark_.assign(dag->num_vertices(), 0);
  return index;
}

bool FelineIndex::CanReach(VertexId from, VertexId to) const {
  if (from == to) return true;
  // Reachability implies dominance in both topological coordinates.
  if (!Dominates(from, to)) {
    ++counters_.dominance_rejects;
    return false;
  }
  ++counters_.dfs_fallbacks;
  return GuidedDfs(from, to);
}

bool FelineIndex::GuidedDfs(VertexId from, VertexId to) const {
  if (++epoch_ == 0) {
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  stack_.clear();
  stack_.push_back(from);
  mark_[from] = epoch_;
  while (!stack_.empty()) {
    const VertexId v = stack_.back();
    stack_.pop_back();
    for (const VertexId w : dag_->OutNeighbors(v)) {
      if (w == to) return true;
      if (mark_[w] == epoch_) continue;
      mark_[w] = epoch_;
      // Only children that still dominate the target can lead to it.
      if (Dominates(w, to)) stack_.push_back(w);
    }
  }
  return false;
}

}  // namespace gsr
