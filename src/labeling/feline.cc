#include "labeling/feline.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/check.h"

namespace gsr {

namespace {

/// Kahn's algorithm with a priority queue over the ready set; `prefer_max`
/// flips the tie-breaking so the two produced orders disagree wherever the
/// DAG leaves freedom.
std::vector<uint32_t> TopologicalRank(const DiGraph& dag, bool prefer_max) {
  const VertexId n = dag.num_vertices();
  std::vector<uint32_t> in_degree(n);
  std::vector<uint32_t> rank(n, 0);

  auto push_order = [prefer_max](VertexId a, VertexId b) {
    return prefer_max ? a < b : a > b;  // priority_queue pops the "largest".
  };
  std::priority_queue<VertexId, std::vector<VertexId>,
                      std::function<bool(VertexId, VertexId)>>
      ready(push_order);

  for (VertexId v = 0; v < n; ++v) {
    in_degree[v] = dag.InDegree(v);
    if (in_degree[v] == 0) ready.push(v);
  }
  uint32_t next_rank = 0;
  while (!ready.empty()) {
    const VertexId v = ready.top();
    ready.pop();
    rank[v] = next_rank++;
    for (const VertexId w : dag.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  GSR_CHECK(next_rank == n);  // Feline requires a DAG.
  return rank;
}

}  // namespace

FelineIndex FelineIndex::Build(const DiGraph* dag) {
  GSR_CHECK(dag != nullptr);
  FelineIndex index;
  index.dag_ = dag;
  index.x_ = TopologicalRank(*dag, /*prefer_max=*/false);
  index.y_ = TopologicalRank(*dag, /*prefer_max=*/true);
  return index;
}

bool FelineIndex::CanReach(VertexId from, VertexId to,
                           SearchScratch& scratch) const {
  if (from == to) return true;
  // Reachability implies dominance in both topological coordinates.
  if (!Dominates(from, to)) {
    ++scratch.counters.dominance_rejects;
    return false;
  }
  ++scratch.counters.dfs_fallbacks;
  return GuidedDfs(from, to, scratch);
}

bool FelineIndex::GuidedDfs(VertexId from, VertexId to,
                            SearchScratch& scratch) const {
  const size_t n = x_.size();
  if (scratch.mark.size() != n) {
    scratch.mark.assign(n, 0);
    scratch.epoch = 0;
  }
  if (++scratch.epoch == 0) {
    std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
    scratch.epoch = 1;
  }
  scratch.stack.clear();
  scratch.stack.push_back(from);
  scratch.mark[from] = scratch.epoch;
  while (!scratch.stack.empty()) {
    const VertexId v = scratch.stack.back();
    scratch.stack.pop_back();
    for (const VertexId w : dag_->OutNeighbors(v)) {
      if (w == to) return true;
      if (scratch.mark[w] == scratch.epoch) continue;
      scratch.mark[w] = scratch.epoch;
      // Only children that still dominate the target can lead to it.
      if (Dominates(w, to)) scratch.stack.push_back(w);
    }
  }
  return false;
}

void FelineIndex::SerializeTo(BinaryWriter& w) const {
  w.WriteVector(x_);
  w.WriteVector(y_);
}

Result<FelineIndex> FelineIndex::Deserialize(BinaryReader& r,
                                             const DiGraph* dag) {
  FelineIndex index;
  index.dag_ = dag;
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.x_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&index.y_));
  if (index.x_.size() != index.y_.size() ||
      (dag != nullptr && index.x_.size() != dag->num_vertices())) {
    return Status::InvalidArgument(
        "Feline: coordinate arrays disagree with the graph");
  }
  return index;
}

}  // namespace gsr
