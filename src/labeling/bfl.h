#ifndef GSR_LABELING_BFL_H_
#define GSR_LABELING_BFL_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "graph/digraph.h"
#include "graph/spanning_forest.h"

namespace gsr {

/// Bloom-Filter Labeling (Su et al., "Reachability Querying: Can It Be
/// Even Faster?"), the Label+G reachability scheme the paper picks for its
/// strongest spatial-first baseline, SpaReach-BFL.
///
/// Every vertex carries
///  - a spanning-tree interval [min_post_subtree, post] for O(1) positive
///    answers on tree descendants,
///  - a Bloom filter of the hashed *out-set* (vertices it can reach) and
///    one of the hashed *in-set* (vertices that reach it), merged over the
///    DAG in (reverse) topological order, for O(s) negative answers:
///    if u reaches v then out(u) ⊇ out(v) and in(v) ⊇ in(u).
/// When neither label decides, a DFS pruned by the same two tests resolves
/// the query exactly, so BFL is always correct.
///
/// The input must be a DAG. The index itself is immutable after Build;
/// the Label+G DFS keeps its visited marks in a SearchScratch, so queries
/// run concurrently when each thread passes its own scratch. The
/// two-argument CanReach uses an index-owned scratch and stays
/// single-threaded.
class BflIndex {
 public:
  struct Options {
    /// Bloom filter width in 64-bit words (s = 64 * filter_words bits).
    /// BFL's recommended setting is a few hundred bits.
    uint32_t filter_words = 4;
  };

  /// Counters for observing how queries were answered (used by tests to
  /// confirm the filters actually prune).
  struct QueryCounters {
    uint64_t tree_hits = 0;       // answered by the tree interval
    uint64_t filter_rejects = 0;  // answered negatively by a Bloom test
    uint64_t dfs_fallbacks = 0;   // needed the pruned DFS
  };

  /// Per-thread DFS state (epoch-stamped marks + stack) and counters.
  /// Sized lazily on first use, so a default-constructed scratch works for
  /// any index.
  struct SearchScratch {
    std::vector<uint32_t> mark;
    std::vector<VertexId> stack;
    uint32_t epoch = 0;
    QueryCounters counters;
  };

  /// Builds the index over `dag`, which must outlive the index (the DFS
  /// fallback of the Label+G scheme traverses it).
  static BflIndex Build(const DiGraph* dag, const Options& options);
  static BflIndex Build(const DiGraph* dag) { return Build(dag, Options{}); }

  /// Writes the filter width, spanning forest and both filter arrays
  /// (snapshot layer). The DAG itself is not persisted.
  void SerializeTo(BinaryWriter& w) const;

  /// Restores an index from `r`, rebinding the Label+G DFS fallback to
  /// `dag` — which must be the graph the index was built over (the caller,
  /// e.g. the method snapshot loader, validates that via the snapshot's
  /// dataset fingerprint).
  static Result<BflIndex> Deserialize(BinaryReader& r, const DiGraph* dag);

  /// True iff `to` is reachable from `from` (reflexive: CanReach(v,v)).
  /// Touches no index state except through `scratch`; thread-safe with
  /// one scratch per thread.
  bool CanReach(VertexId from, VertexId to, SearchScratch& scratch) const;

  /// Single-threaded convenience overload on the index-owned scratch.
  bool CanReach(VertexId from, VertexId to) const {
    return CanReach(from, to, scratch_);
  }

  const QueryCounters& counters() const { return scratch_.counters; }
  void ResetCounters() const { scratch_.counters = QueryCounters{}; }

  /// Folds counters accumulated in an external scratch into counters()
  /// and zeroes them in `scratch`. Callers serialize.
  void DrainScratchCounters(SearchScratch& scratch) const {
    if (&scratch == &scratch_) return;
    scratch_.counters.tree_hits += scratch.counters.tree_hits;
    scratch_.counters.filter_rejects += scratch.counters.filter_rejects;
    scratch_.counters.dfs_fallbacks += scratch.counters.dfs_fallbacks;
    scratch.counters = QueryCounters{};
  }

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const;

 private:
  BflIndex() = default;

  /// True when every bit of filter `b` is also set in filter `a`
  /// (a ⊇ b over the hashed sets).
  bool FilterContains(const std::vector<uint64_t>& filters, VertexId a,
                      VertexId b) const;

  /// Tree-interval test: is `to` in the spanning subtree of `from`?
  bool InSubtree(VertexId from, VertexId to) const {
    return forest_.min_post_subtree[from] <= forest_.post[to] &&
           forest_.post[to] <= forest_.post[from];
  }

  bool PrunedDfs(VertexId from, VertexId to, SearchScratch& scratch) const;

  uint32_t filter_words_ = 4;
  const DiGraph* dag_ = nullptr;  // For the DFS fallback (Label+G).
  SpanningForest forest_;
  std::vector<uint64_t> out_filters_;  // n * filter_words_
  std::vector<uint64_t> in_filters_;   // n * filter_words_

  // Scratch behind the single-threaded CanReach overload.
  mutable SearchScratch scratch_;
};

}  // namespace gsr

#endif  // GSR_LABELING_BFL_H_
