#include "spatial/frozen_rtree.h"

#include "common/check.h"

namespace gsr {

template <typename BoxT, typename LeafT>
FrozenRTree<BoxT, LeafT> FrozenRTree<BoxT, LeafT>::Freeze(
    const RTree<BoxT, LeafT>& tree) {
  FrozenRTree out;
  out.size_ = tree.size_;
  out.height_ = tree.height_;
  if (tree.root_ == RTree<BoxT, LeafT>::kNoNode) return out;

  // Breadth-first numbering: node 0 is the root and every child gets a
  // higher index than its parent — a property Deserialize re-validates to
  // reject cyclic (corrupt) node links.
  std::vector<uint32_t> order;
  std::vector<uint32_t> frozen_of(tree.nodes_.size(), 0);
  order.reserve(tree.nodes_.size());
  order.push_back(tree.root_);
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& node = tree.nodes_[order[i]];
    if (node.is_leaf) continue;
    for (const uint32_t child : node.children) {
      frozen_of[child] = static_cast<uint32_t>(order.size());
      order.push_back(child);
    }
  }

  out.owned_nodes_.reserve(order.size());
  for (const uint32_t dyn : order) {
    const auto& node = tree.nodes_[dyn];
    Node packed;
    packed.mbr = node.mbr;
    packed.is_leaf = node.is_leaf ? 1 : 0;
    if (node.is_leaf) {
      packed.first = static_cast<uint32_t>(out.owned_leaf_ids_.size());
      packed.count = static_cast<uint32_t>(node.ids.size());
      out.owned_leaf_geoms_.insert(out.owned_leaf_geoms_.end(),
                                   node.geoms.begin(), node.geoms.end());
      out.owned_leaf_ids_.insert(out.owned_leaf_ids_.end(), node.ids.begin(),
                                 node.ids.end());
    } else {
      packed.first = static_cast<uint32_t>(out.owned_child_nodes_.size());
      packed.count = static_cast<uint32_t>(node.children.size());
      for (size_t i = 0; i < node.children.size(); ++i) {
        out.owned_child_boxes_.push_back(node.boxes[i]);
        out.owned_child_nodes_.push_back(frozen_of[node.children[i]]);
      }
    }
    out.owned_nodes_.push_back(packed);
  }
  GSR_CHECK(out.owned_leaf_ids_.size() == out.size_);

  out.nodes_ = out.owned_nodes_;
  out.child_boxes_ = out.owned_child_boxes_;
  out.child_nodes_ = out.owned_child_nodes_;
  out.leaf_geoms_ = out.owned_leaf_geoms_;
  out.leaf_ids_ = out.owned_leaf_ids_;
  out.root_mbr_ = out.owned_nodes_[0].mbr;
  return out;
}

template <typename BoxT, typename LeafT>
void FrozenRTree<BoxT, LeafT>::SerializeTo(BinaryWriter& w) const {
  GSR_CHECK(!paged_);  // A paged tree's arrays live on disk, not in memory.
  w.WriteU64(size_);
  w.WriteI32(height_);
  w.WriteArray(nodes_);
  w.WriteArray(child_boxes_);
  w.WriteArray(child_nodes_);
  w.WriteArray(leaf_geoms_);
  w.WriteArray(leaf_ids_);
}

template <typename BoxT, typename LeafT>
Result<FrozenRTree<BoxT, LeafT>> FrozenRTree<BoxT, LeafT>::Deserialize(
    BinaryReader& r, const BorrowContext& ctx) {
  FrozenRTree out;
  uint64_t size = 0;
  GSR_RETURN_IF_ERROR(r.ReadU64(&size));
  GSR_RETURN_IF_ERROR(r.ReadI32(&out.height_));
  out.size_ = static_cast<size_t>(size);
  GSR_RETURN_IF_ERROR(r.ReadArrayPageable(ctx, &out.owned_nodes_, &out.nodes_,
                                          &out.paged_nodes_));
  GSR_RETURN_IF_ERROR(r.ReadArrayPageable(ctx, &out.owned_child_boxes_,
                                          &out.child_boxes_,
                                          &out.paged_child_boxes_));
  GSR_RETURN_IF_ERROR(r.ReadArrayPageable(ctx, &out.owned_child_nodes_,
                                          &out.child_nodes_,
                                          &out.paged_child_nodes_));
  GSR_RETURN_IF_ERROR(r.ReadArrayPageable(ctx, &out.owned_leaf_geoms_,
                                          &out.leaf_geoms_,
                                          &out.paged_leaf_geoms_));
  GSR_RETURN_IF_ERROR(r.ReadArrayPageable(ctx, &out.owned_leaf_ids_,
                                          &out.leaf_ids_,
                                          &out.paged_leaf_ids_));

  // Structural validation: every index a query descent follows must be in
  // range, and child links must point strictly forward (the BFS layout
  // invariant), so corrupt files fail here instead of crashing later.
  if (out.child_boxes_.size() != out.child_nodes_.size() ||
      out.leaf_geoms_.size() != out.leaf_ids_.size() ||
      out.leaf_ids_.size() != out.size_ ||
      (out.nodes_.empty() && out.size_ != 0)) {
    return Status::InvalidArgument("frozen rtree: array sizes disagree");
  }
  uint64_t leaf_entries = 0;
  for (size_t idx = 0; idx < out.nodes_.size(); ++idx) {
    const Node& node = out.nodes_[idx];
    const uint64_t end = static_cast<uint64_t>(node.first) + node.count;
    if (node.is_leaf > 1) {
      return Status::InvalidArgument("frozen rtree: bad node tag");
    }
    if (node.is_leaf) {
      if (end > out.leaf_ids_.size()) {
        return Status::InvalidArgument("frozen rtree: leaf range out of bounds");
      }
      leaf_entries += node.count;
      continue;
    }
    if (end > out.child_nodes_.size()) {
      return Status::InvalidArgument("frozen rtree: child range out of bounds");
    }
    for (uint64_t i = node.first; i < end; ++i) {
      if (out.child_nodes_[i] <= idx || out.child_nodes_[i] >= out.nodes_.size()) {
        return Status::InvalidArgument("frozen rtree: invalid child link");
      }
    }
  }
  if (leaf_entries != out.size_) {
    return Status::InvalidArgument(
        "frozen rtree: leaf ranges do not cover the entry count");
  }
  if (!out.nodes_.empty()) out.root_mbr_ = out.nodes_[0].mbr;
  if (ctx.paged != nullptr) {
    // Validation above ran against the reader's transient section buffer;
    // from here on only the on-disk PagedArrays are touched. Clear the
    // spans so nothing dangles once the buffer is reused.
    out.paged_ = true;
    out.nodes_ = {};
    out.child_boxes_ = {};
    out.child_nodes_ = {};
    out.leaf_geoms_ = {};
    out.leaf_ids_ = {};
  }
  if (ctx.borrow) out.keepalive_ = ctx.keepalive;
  return out;
}

template class FrozenRTree<Rect, Rect>;
template class FrozenRTree<Rect, Point2D>;
template class FrozenRTree<Box3D, Box3D>;
template class FrozenRTree<Box3D, Point3D>;

}  // namespace gsr
