#ifndef GSR_SPATIAL_RTREE_H_
#define GSR_SPATIAL_RTREE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/thread_pool.h"
#include "geometry/geometry.h"

namespace gsr {

/// Geometry traits used by RTree. A box type needs Measure/BoxDims/
/// CenterAlong/BoxMargin; a leaf geometry additionally needs GeomToBox and
/// GeomIntersects against its box type.
inline double Measure(const Rect& r) { return r.Area(); }
inline double Measure(const Box3D& b) { return b.Volume(); }

inline int BoxDims(const Rect&) { return 2; }
inline int BoxDims(const Box3D&) { return 3; }

inline double CenterAlong(const Rect& r, int dim) {
  return dim == 0 ? (r.min_x + r.max_x) / 2.0 : (r.min_y + r.max_y) / 2.0;
}
inline double CenterAlong(const Box3D& b, int dim) {
  return (b.min[dim] + b.max[dim]) / 2.0;
}
inline double CenterAlong(const Point2D& p, int dim) {
  return dim == 0 ? p.x : p.y;
}
inline double CenterAlong(const Point3D& p, int dim) {
  return dim == 0 ? p.x : (dim == 1 ? p.y : p.z);
}

/// Margin (sum of edge lengths); used as a split tie-breaker.
inline double BoxMargin(const Rect& r) {
  return r.IsEmpty() ? 0.0 : (r.Width() + r.Height());
}
inline double BoxMargin(const Box3D& b) {
  if (b.IsEmpty()) return 0.0;
  return (b.max[0] - b.min[0]) + (b.max[1] - b.min[1]) +
         (b.max[2] - b.min[2]);
}

/// Per-dimension box extremes; tie-breaker keys for deterministic STR
/// sorting (see RTree::StrLess).
inline double BoxMinAlong(const Rect& r, int dim) {
  return dim == 0 ? r.min_x : r.min_y;
}
inline double BoxMaxAlong(const Rect& r, int dim) {
  return dim == 0 ? r.max_x : r.max_y;
}
inline double BoxMinAlong(const Box3D& b, int dim) { return b.min[dim]; }
inline double BoxMaxAlong(const Box3D& b, int dim) { return b.max[dim]; }

/// Leaf-geometry -> bounding-box conversions.
inline Rect GeomToBox(const Rect& r) { return r; }
inline Box3D GeomToBox(const Box3D& b) { return b; }
inline Rect GeomToBox(const Point2D& p) { return Rect::FromPoint(p); }
inline Box3D GeomToBox(const Point3D& p) {
  return Box3D::FromPoint(p.x, p.y, p.z);
}

/// Query-box vs leaf-geometry intersection tests.
inline bool GeomIntersects(const Rect& query, const Rect& geom) {
  return query.Intersects(geom);
}
inline bool GeomIntersects(const Box3D& query, const Box3D& geom) {
  return query.Intersects(geom);
}
inline bool GeomIntersects(const Rect& query, const Point2D& geom) {
  return query.Contains(geom);
}
inline bool GeomIntersects(const Box3D& query, const Point3D& geom) {
  return geom.x >= query.min[0] && geom.x <= query.max[0] &&
         geom.y >= query.min[1] && geom.y <= query.max[1] &&
         geom.z >= query.min[2] && geom.z <= query.max[2];
}

/// An in-memory, data-oriented-partitioning R-tree in the spirit of
/// Guttman's original design, the structure the paper (and GeoReach before
/// it) uses for the spatial predicate of RangeReach.
///
/// - `BoxT` is the bounding-box type (Rect or Box3D); `LeafT` is how data
///   entries are *stored* in the leaves. Following the Boost behaviour the
///   paper relies on, points are stored as genuine points (2 or 3 doubles)
///   while rectangles, boxes and vertical segments all occupy a full box —
///   this is exactly why the paper's replicate (non-MBR) SCC variant beats
///   the MBR one, and why 3DReach-REV sees no difference between them.
/// - `BulkLoad` packs entries with the Sort-Tile-Recursive algorithm;
///   `Insert` performs classic least-enlargement descent with quadratic
///   node splitting.
/// - All query entry points support early termination, which RangeReach
///   methods rely on (they only need *existence* of a matching entry).
template <typename BoxT, typename LeafT>
class FrozenRTree;

template <typename BoxT, typename LeafT = BoxT>
class RTree {
 public:
  /// Node capacity bounds. Defaults follow common main-memory settings:
  /// fanout 32, minimum fill 40%.
  struct Options {
    int max_entries = 32;
    int min_entries = 12;
  };

  RTree() : RTree(Options()) {}

  explicit RTree(const Options& options) : options_(options) {
    GSR_CHECK(options_.max_entries >= 4);
    GSR_CHECK(options_.min_entries >= 2);
    GSR_CHECK(options_.min_entries <= options_.max_entries / 2);
  }

  /// Number of data entries stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 when empty, 1 when a single leaf root).
  int Height() const { return height_; }

  /// MBR of all stored entries (empty box when the tree is empty).
  BoxT Bounds() const {
    return root_ == kNoNode ? BoxT() : nodes_[root_].mbr;
  }

  /// Inserts one (geometry, id) entry.
  void Insert(const LeafT& geom, uint64_t id);

  /// Discards current contents and bulk-loads `entries` with STR packing.
  /// When `pool` is non-null the tile sorts and node packing run on its
  /// workers; STR tile boundaries depend only on entry *counts* and the
  /// sort comparator is a strict total order, so the resulting tree is
  /// node-for-node identical to the serial build at any thread count.
  void BulkLoad(std::vector<std::pair<LeafT, uint64_t>> entries,
                exec::ThreadPool* pool);
  void BulkLoad(std::vector<std::pair<LeafT, uint64_t>> entries) {
    BulkLoad(std::move(entries), nullptr);
  }

  /// Calls `fn(geom, id)` for every entry intersecting `query` until `fn`
  /// returns false. Returns true when the visit was stopped early.
  template <typename Fn>
  bool ForEachIntersecting(const BoxT& query, Fn&& fn) const {
    if (root_ == kNoNode) return false;
    return VisitIntersecting(root_, query, fn);
  }

  /// True iff at least one entry intersects `query`. This is the primitive
  /// behind 3DReach's existence cuboids and 3DReach-REV's query plane.
  bool AnyIntersecting(const BoxT& query) const {
    return ForEachIntersecting(query,
                               [](const LeafT&, uint64_t) { return false; });
  }

  /// All ids whose geometries intersect `query` (the classic range query).
  std::vector<uint64_t> CollectIntersecting(const BoxT& query) const {
    std::vector<uint64_t> out;
    ForEachIntersecting(query, [&out](const LeafT&, uint64_t id) {
      out.push_back(id);
      return true;
    });
    return out;
  }

  /// Number of entries intersecting `query`.
  size_t CountIntersecting(const BoxT& query) const {
    size_t n = 0;
    ForEachIntersecting(query, [&n](const LeafT&, uint64_t) {
      ++n;
      return true;
    });
    return n;
  }

  /// Approximate main-memory footprint of the index in bytes.
  size_t SizeBytes() const;

  /// Structural self-check (parent MBRs cover children, fill bounds hold).
  /// Used by tests; O(n).
  bool CheckInvariants() const;

 private:
  // FrozenRTree::Freeze packs the node storage into its contiguous layout.
  template <typename B, typename L>
  friend class FrozenRTree;

  static constexpr uint32_t kNoNode = std::numeric_limits<uint32_t>::max();

  /// Internal nodes store child boxes + child node indices; leaves store
  /// leaf geometries + entry ids.
  struct Node {
    bool is_leaf = true;
    BoxT mbr;
    std::vector<BoxT> boxes;         // internal nodes only
    std::vector<uint32_t> children;  // internal nodes only
    std::vector<LeafT> geoms;        // leaves only
    std::vector<uint64_t> ids;       // leaves only
    int count() const {
      return static_cast<int>(is_leaf ? ids.size() : children.size());
    }
    BoxT EntryBox(int i) const {
      return is_leaf ? GeomToBox(geoms[i]) : boxes[i];
    }
  };

  uint32_t NewNode(bool is_leaf) {
    nodes_.push_back(Node{});
    nodes_.back().is_leaf = is_leaf;
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void RecomputeMbr(Node& node) {
    node.mbr = BoxT();
    for (int i = 0; i < node.count(); ++i) node.mbr.Expand(node.EntryBox(i));
  }

  /// Result of a recursive insert: whether the child split and, if so, the
  /// new sibling produced by the split.
  struct SplitResult {
    bool split = false;
    uint32_t new_node = kNoNode;
  };

  SplitResult InsertRecursive(uint32_t node_idx, const LeafT& geom,
                              uint64_t id);
  int ChooseSubtree(const Node& node, const BoxT& box) const;
  uint32_t SplitNode(uint32_t node_idx);
  void PickSeeds(const std::vector<BoxT>& boxes, int* seed_a,
                 int* seed_b) const;

  template <typename Fn>
  bool VisitIntersecting(uint32_t node_idx, const BoxT& query, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    if (node.is_leaf) {
      for (int i = 0; i < node.count(); ++i) {
        if (!GeomIntersects(query, node.geoms[i])) continue;
        if (!fn(node.geoms[i], node.ids[i])) return true;
      }
      return false;
    }
    for (int i = 0; i < node.count(); ++i) {
      if (!node.boxes[i].Intersects(query)) continue;
      if (VisitIntersecting(node.children[i], query, fn)) return true;
    }
    return false;
  }

  bool CheckNode(uint32_t node_idx, int depth, int leaf_depth) const;

  /// One node-sized run of consecutive items produced by STR tiling.
  struct Run {
    size_t lo = 0;
    size_t hi = 0;
  };

  /// Strict total order used for STR tiling along `dim`: center along dim,
  /// then the remaining centers, then box extents, then id. Ties only
  /// between bitwise-identical entries, which makes the sorted permutation
  /// unique — the foundation of the deterministic parallel build.
  template <typename ItemT>
  static bool StrLess(const ItemT& a, const ItemT& b, int dim, int dims);

  /// STR tiling: sorts and slices `items` level by level along each
  /// dimension and returns the node-sized runs in ascending position.
  /// Equivalent to the classic recursion, but expressed as per-dimension
  /// rounds of independent range sorts so they can run on `pool`.
  template <typename ItemT>
  std::vector<Run> StrSortIntoRuns(std::vector<ItemT>& items, int dims,
                                   exec::ThreadPool* pool);

  Options options_;
  std::vector<Node> nodes_;
  uint32_t root_ = kNoNode;
  size_t size_ = 0;
  int height_ = 0;
};

/// 2-D R-tree over rectangles (the MBR SCC variant).
using RTree2D = RTree<Rect, Rect>;
/// 2-D R-tree over points (the replicate SCC variant).
using RTreePoints2D = RTree<Rect, Point2D>;
/// 3-D R-tree over boxes/segments (3DReach-REV, and 3DReach's MBR variant).
using RTree3D = RTree<Box3D, Box3D>;
/// 3-D R-tree over points (3DReach's replicate variant).
using RTreePoints3D = RTree<Box3D, Point3D>;

extern template class RTree<Rect, Rect>;
extern template class RTree<Rect, Point2D>;
extern template class RTree<Box3D, Box3D>;
extern template class RTree<Box3D, Point3D>;

}  // namespace gsr

#endif  // GSR_SPATIAL_RTREE_H_
