#include "spatial/rtree.h"

#include <cmath>
#include <cstddef>
#include <utility>

#include "exec/parallel.h"

namespace gsr {

template <typename BoxT, typename LeafT>
void RTree<BoxT, LeafT>::Insert(const LeafT& geom, uint64_t id) {
  if (root_ == kNoNode) {
    root_ = NewNode(/*is_leaf=*/true);
    height_ = 1;
  }
  SplitResult result = InsertRecursive(root_, geom, id);
  if (result.split) {
    // Grow the tree: a new root adopts the old root and its new sibling.
    const uint32_t old_root = root_;
    const uint32_t new_root = NewNode(/*is_leaf=*/false);
    Node& node = nodes_[new_root];
    node.children = {old_root, result.new_node};
    node.boxes = {nodes_[old_root].mbr, nodes_[result.new_node].mbr};
    RecomputeMbr(node);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

template <typename BoxT, typename LeafT>
typename RTree<BoxT, LeafT>::SplitResult RTree<BoxT, LeafT>::InsertRecursive(
    uint32_t node_idx, const LeafT& geom, uint64_t id) {
  const BoxT box = GeomToBox(geom);
  if (nodes_[node_idx].is_leaf) {
    Node& leaf = nodes_[node_idx];
    leaf.geoms.push_back(geom);
    leaf.ids.push_back(id);
    leaf.mbr.Expand(box);
    if (leaf.count() > options_.max_entries) {
      return SplitResult{true, SplitNode(node_idx)};
    }
    return SplitResult{};
  }

  const int slot = ChooseSubtree(nodes_[node_idx], box);
  const uint32_t child_idx = nodes_[node_idx].children[slot];
  const SplitResult child_split = InsertRecursive(child_idx, geom, id);

  // nodes_ may have been reallocated by descendant splits; re-acquire.
  nodes_[node_idx].boxes[slot] = nodes_[child_idx].mbr;
  if (child_split.split) {
    Node& node = nodes_[node_idx];
    node.children.push_back(child_split.new_node);
    node.boxes.push_back(nodes_[child_split.new_node].mbr);
    if (node.count() > options_.max_entries) {
      return SplitResult{true, SplitNode(node_idx)};
    }
  }
  RecomputeMbr(nodes_[node_idx]);
  return SplitResult{};
}

template <typename BoxT, typename LeafT>
int RTree<BoxT, LeafT>::ChooseSubtree(const Node& node,
                                      const BoxT& box) const {
  GSR_DCHECK(!node.is_leaf);
  int best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_measure = std::numeric_limits<double>::infinity();
  for (int i = 0; i < node.count(); ++i) {
    BoxT merged = node.boxes[i];
    merged.Expand(box);
    const double measure = Measure(node.boxes[i]);
    const double enlargement = Measure(merged) - measure;
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && measure < best_measure)) {
      best = i;
      best_enlargement = enlargement;
      best_measure = measure;
    }
  }
  return best;
}

template <typename BoxT, typename LeafT>
void RTree<BoxT, LeafT>::PickSeeds(const std::vector<BoxT>& boxes,
                                   int* seed_a, int* seed_b) const {
  // Guttman's quadratic PickSeeds: the pair wasting the most area together.
  double worst = -std::numeric_limits<double>::infinity();
  *seed_a = 0;
  *seed_b = 1;
  const int n = static_cast<int>(boxes.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      BoxT merged = boxes[i];
      merged.Expand(boxes[j]);
      const double waste =
          Measure(merged) - Measure(boxes[i]) - Measure(boxes[j]);
      if (waste > worst) {
        worst = waste;
        *seed_a = i;
        *seed_b = j;
      }
    }
  }
}

template <typename BoxT, typename LeafT>
uint32_t RTree<BoxT, LeafT>::SplitNode(uint32_t node_idx) {
  const uint32_t new_idx = NewNode(nodes_[node_idx].is_leaf);
  Node& node = nodes_[node_idx];
  Node& sibling = nodes_[new_idx];

  const int total = node.count();
  const bool is_leaf = node.is_leaf;

  // Entry bounding boxes drive the split decisions for both node kinds.
  std::vector<BoxT> boxes;
  boxes.reserve(total);
  for (int i = 0; i < total; ++i) boxes.push_back(node.EntryBox(i));

  int seed_a = 0;
  int seed_b = 1;
  PickSeeds(boxes, &seed_a, &seed_b);

  std::vector<BoxT> child_boxes = std::move(node.boxes);
  std::vector<uint32_t> children = std::move(node.children);
  std::vector<LeafT> geoms = std::move(node.geoms);
  std::vector<uint64_t> ids = std::move(node.ids);
  node.boxes.clear();
  node.children.clear();
  node.geoms.clear();
  node.ids.clear();

  std::vector<bool> assigned(total, false);
  auto assign = [&](Node& target, int i) {
    if (is_leaf) {
      target.geoms.push_back(geoms[i]);
      target.ids.push_back(ids[i]);
    } else {
      target.boxes.push_back(child_boxes[i]);
      target.children.push_back(children[i]);
    }
    assigned[i] = true;
  };

  assign(node, seed_a);
  assign(sibling, seed_b);
  BoxT mbr_a = boxes[seed_a];
  BoxT mbr_b = boxes[seed_b];

  int remaining = total - 2;
  while (remaining > 0) {
    // If one group needs every remaining entry to reach the minimum fill,
    // hand the rest over wholesale.
    if (node.count() + remaining == options_.min_entries ||
        sibling.count() + remaining == options_.min_entries) {
      Node& target =
          (node.count() + remaining == options_.min_entries) ? node : sibling;
      BoxT& target_mbr = (&target == &node) ? mbr_a : mbr_b;
      for (int i = 0; i < total; ++i) {
        if (!assigned[i]) {
          assign(target, i);
          target_mbr.Expand(boxes[i]);
          --remaining;
        }
      }
      break;
    }

    // PickNext: the entry with the strongest preference for one group.
    int pick = -1;
    double best_diff = -1.0;
    double enlarge_a_pick = 0.0;
    double enlarge_b_pick = 0.0;
    for (int i = 0; i < total; ++i) {
      if (assigned[i]) continue;
      BoxT ma = mbr_a;
      ma.Expand(boxes[i]);
      BoxT mb = mbr_b;
      mb.Expand(boxes[i]);
      const double ea = Measure(ma) - Measure(mbr_a);
      const double eb = Measure(mb) - Measure(mbr_b);
      const double diff = std::fabs(ea - eb);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        enlarge_a_pick = ea;
        enlarge_b_pick = eb;
      }
    }
    GSR_DCHECK(pick >= 0);

    bool to_a;
    if (enlarge_a_pick != enlarge_b_pick) {
      to_a = enlarge_a_pick < enlarge_b_pick;
    } else if (Measure(mbr_a) != Measure(mbr_b)) {
      to_a = Measure(mbr_a) < Measure(mbr_b);
    } else {
      to_a = node.count() <= sibling.count();
    }
    if (to_a) {
      assign(node, pick);
      mbr_a.Expand(boxes[pick]);
    } else {
      assign(sibling, pick);
      mbr_b.Expand(boxes[pick]);
    }
    --remaining;
  }

  node.mbr = mbr_a;
  sibling.mbr = mbr_b;
  return new_idx;
}

template <typename BoxT, typename LeafT>
template <typename ItemT>
bool RTree<BoxT, LeafT>::StrLess(const ItemT& a, const ItemT& b, int dim,
                                 int dims) {
  {
    const double ca = CenterAlong(a.first, dim);
    const double cb = CenterAlong(b.first, dim);
    if (ca != cb) return ca < cb;
  }
  for (int d = 0; d < dims; ++d) {
    if (d == dim) continue;
    const double ca = CenterAlong(a.first, d);
    const double cb = CenterAlong(b.first, d);
    if (ca != cb) return ca < cb;
  }
  const auto box_a = GeomToBox(a.first);
  const auto box_b = GeomToBox(b.first);
  for (int d = 0; d < dims; ++d) {
    if (BoxMinAlong(box_a, d) != BoxMinAlong(box_b, d)) {
      return BoxMinAlong(box_a, d) < BoxMinAlong(box_b, d);
    }
    if (BoxMaxAlong(box_a, d) != BoxMaxAlong(box_b, d)) {
      return BoxMaxAlong(box_a, d) < BoxMaxAlong(box_b, d);
    }
  }
  return a.second < b.second;
}

template <typename BoxT, typename LeafT>
template <typename ItemT>
auto RTree<BoxT, LeafT>::StrSortIntoRuns(std::vector<ItemT>& items, int dims,
                                         exec::ThreadPool* pool)
    -> std::vector<Run> {
  const size_t capacity = static_cast<size_t>(options_.max_entries);
  std::vector<Run> runs;
  std::vector<Run> current{{0, items.size()}};
  for (int dim = 0; dim < dims && !current.empty(); ++dim) {
    // Ranges already small enough become one node, unsorted — exactly as
    // the classic recursion's base case.
    std::vector<Run> to_sort;
    for (const Run& r : current) {
      (r.hi - r.lo <= capacity ? runs : to_sort).push_back(r);
    }

    auto less = [dim, dims](const ItemT& a, const ItemT& b) {
      return StrLess(a, b, dim, dims);
    };
    if (to_sort.size() == 1) {
      // The dim-0 round is one big range: split it across workers.
      exec::ParallelSort(pool,
                         items.begin() + static_cast<ptrdiff_t>(to_sort[0].lo),
                         items.begin() + static_cast<ptrdiff_t>(to_sort[0].hi),
                         less);
    } else {
      // Deeper rounds have many independent slabs: one sort per worker.
      exec::ForEachIndex(pool, to_sort.size(), 1, [&](size_t i) {
        std::sort(items.begin() + static_cast<ptrdiff_t>(to_sort[i].lo),
                  items.begin() + static_cast<ptrdiff_t>(to_sort[i].hi), less);
      });
    }

    std::vector<Run> next;
    for (const Run& r : to_sort) {
      const size_t n = r.hi - r.lo;
      if (dim >= dims - 1) {
        // Last dimension: chop the run into consecutive full nodes.
        for (size_t start = r.lo; start < r.hi; start += capacity) {
          runs.push_back(Run{start, std::min(start + capacity, r.hi)});
        }
        continue;
      }
      const double nodes_needed =
          std::ceil(static_cast<double>(n) / static_cast<double>(capacity));
      const size_t slices = static_cast<size_t>(std::max(
          1.0, std::ceil(std::pow(nodes_needed,
                                  1.0 / static_cast<double>(dims - dim)))));
      const size_t slab = (n + slices - 1) / slices;
      for (size_t start = r.lo; start < r.hi; start += slab) {
        next.push_back(Run{start, std::min(start + slab, r.hi)});
      }
    }
    current = std::move(next);
  }
  // Emit in ascending item position, matching the serial recursion order.
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.lo < b.lo; });
  return runs;
}

template <typename BoxT, typename LeafT>
void RTree<BoxT, LeafT>::BulkLoad(
    std::vector<std::pair<LeafT, uint64_t>> entries, exec::ThreadPool* pool) {
  nodes_.clear();
  root_ = kNoNode;
  size_ = entries.size();
  height_ = 0;
  if (entries.empty()) return;

  const int dims = BoxDims(BoxT());
  const size_t capacity = static_cast<size_t>(options_.max_entries);
  {
    // Each STR level shrinks by the fanout; reserving the geometric-series
    // bound keeps nodes_ from reallocating mid-build.
    size_t expected = 0;
    size_t level_nodes = (entries.size() + capacity - 1) / capacity;
    for (;;) {
      expected += level_nodes;
      if (level_nodes <= 1) break;
      level_nodes = (level_nodes + capacity - 1) / capacity;
    }
    nodes_.reserve(expected);
  }

  // Leaf level: one node per run, filled in parallel at fixed indices (no
  // atomics — run i becomes node first_node + i on every thread count).
  std::vector<Run> runs = StrSortIntoRuns(entries, dims, pool);
  uint32_t first_node = 0;
  nodes_.resize(runs.size());
  exec::ForEachIndex(pool, runs.size(), 8, [&](size_t i) {
    Node& leaf = nodes_[first_node + i];
    leaf.is_leaf = true;
    const auto [lo, hi] = runs[i];
    leaf.geoms.reserve(hi - lo);
    leaf.ids.reserve(hi - lo);
    for (size_t k = lo; k < hi; ++k) {
      leaf.geoms.push_back(std::move(entries[k].first));
      leaf.ids.push_back(entries[k].second);
    }
    RecomputeMbr(leaf);
  });
  entries.clear();
  entries.shrink_to_fit();
  height_ = 1;
  size_t level_count = runs.size();

  // Build upper levels by STR-tiling the node MBRs until one root remains.
  while (level_count > 1) {
    std::vector<std::pair<BoxT, uint64_t>> items(level_count);
    exec::ForEachIndex(pool, level_count, 512, [&](size_t i) {
      const uint32_t node_idx = first_node + static_cast<uint32_t>(i);
      items[i] = {nodes_[node_idx].mbr, node_idx};
    });
    runs = StrSortIntoRuns(items, dims, pool);
    const uint32_t parent_first = static_cast<uint32_t>(nodes_.size());
    nodes_.resize(nodes_.size() + runs.size());
    exec::ForEachIndex(pool, runs.size(), 8, [&](size_t i) {
      Node& parent = nodes_[parent_first + i];
      parent.is_leaf = false;
      const auto [lo, hi] = runs[i];
      parent.boxes.reserve(hi - lo);
      parent.children.reserve(hi - lo);
      for (size_t k = lo; k < hi; ++k) {
        parent.boxes.push_back(items[k].first);
        parent.children.push_back(static_cast<uint32_t>(items[k].second));
      }
      RecomputeMbr(parent);
    });
    first_node = parent_first;
    level_count = runs.size();
    ++height_;
  }
  root_ = first_node;
}

template <typename BoxT, typename LeafT>
size_t RTree<BoxT, LeafT>::SizeBytes() const {
  size_t total = sizeof(*this);
  for (const Node& node : nodes_) {
    total += sizeof(Node);
    total += node.boxes.size() * sizeof(BoxT);
    total += node.children.size() * sizeof(uint32_t);
    total += node.geoms.size() * sizeof(LeafT);
    total += node.ids.size() * sizeof(uint64_t);
  }
  return total;
}

template <typename BoxT, typename LeafT>
bool RTree<BoxT, LeafT>::CheckInvariants() const {
  if (root_ == kNoNode) return size_ == 0 && height_ == 0;
  return CheckNode(root_, /*depth=*/1, /*leaf_depth=*/height_);
}

template <typename BoxT, typename LeafT>
bool RTree<BoxT, LeafT>::CheckNode(uint32_t node_idx, int depth,
                                   int leaf_depth) const {
  const Node& node = nodes_[node_idx];
  if (node.count() == 0) return false;
  if (node.count() > options_.max_entries) return false;
  if (node.is_leaf) {
    if (depth != leaf_depth) return false;
    if (node.geoms.size() != node.ids.size()) return false;
  } else {
    if (node.boxes.size() != node.children.size()) return false;
  }
  for (int i = 0; i < node.count(); ++i) {
    if (!node.mbr.Contains(node.EntryBox(i))) return false;
    if (!node.is_leaf) {
      // The parent's stored box must cover the child's actual MBR.
      if (!node.boxes[i].Contains(nodes_[node.children[i]].mbr)) return false;
      if (!CheckNode(node.children[i], depth + 1, leaf_depth)) return false;
    }
  }
  return true;
}

template class RTree<Rect, Rect>;
template class RTree<Rect, Point2D>;
template class RTree<Box3D, Box3D>;
template class RTree<Box3D, Point3D>;

}  // namespace gsr
