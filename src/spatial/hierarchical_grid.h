#ifndef GSR_SPATIAL_HIERARCHICAL_GRID_H_
#define GSR_SPATIAL_HIERARCHICAL_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "geometry/geometry.h"

namespace gsr {

/// Identifier of a cell in a HierarchicalGrid. Level 0 is the finest
/// partitioning; each level up merges 2x2 quad-cells into one.
struct GridCell {
  uint8_t level = 0;
  uint32_t ix = 0;
  uint32_t iy = 0;

  friend bool operator==(const GridCell&, const GridCell&) = default;

  /// Total order used to keep cell sets sorted: by level, then iy, then ix.
  friend bool operator<(const GridCell& a, const GridCell& b) {
    if (a.level != b.level) return a.level < b.level;
    if (a.iy != b.iy) return a.iy < b.iy;
    return a.ix < b.ix;
  }

  /// Packs into a single integer (handy as a hash/map key).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(level) << 56) |
           (static_cast<uint64_t>(iy) << 28) | static_cast<uint64_t>(ix);
  }

  std::string ToString() const;
};

/// The hierarchical (quad) grid GeoReach partitions the space with.
///
/// Level 0 splits the space into 2^depth x 2^depth cells; level `l` has
/// 2^(depth-l) cells per axis; level `depth` is a single cell covering the
/// whole space. Matches the pyramid of Sarwat & Sun's SPA-Graph, where a
/// ReachGrid may mix cells from different levels.
class HierarchicalGrid {
 public:
  /// Builds a grid pyramid over `space` with 2^depth cells per axis at the
  /// finest level. `depth` must be in [0, 27] (cell indices fit 28 bits).
  HierarchicalGrid(const Rect& space, int depth);

  const Rect& space() const { return space_; }
  int depth() const { return depth_; }

  /// Number of levels (depth + 1, counting the single-cell top level).
  int num_levels() const { return depth_ + 1; }

  /// Cells per axis at `level`.
  uint32_t CellsPerAxis(int level) const {
    GSR_DCHECK(level >= 0 && level <= depth_);
    return 1u << (depth_ - level);
  }

  /// The level-`level` cell containing point `p`. Points outside the space
  /// are clamped to the boundary cells.
  GridCell Locate(const Point2D& p, int level) const;

  /// The spatial extent of a cell.
  Rect CellRect(const GridCell& cell) const;

  /// The cell one level up containing `cell`. `cell.level` must be < depth.
  GridCell Parent(const GridCell& cell) const {
    GSR_DCHECK(cell.level < depth_);
    return GridCell{static_cast<uint8_t>(cell.level + 1), cell.ix / 2,
                    cell.iy / 2};
  }

  /// True when `a` covers `b` (same cell, or `a` is an ancestor of `b`).
  bool Covers(const GridCell& a, const GridCell& b) const;

  /// Merges quad-siblings in a sorted, deduplicated cell set bottom-up: if
  /// more than `merge_count` of the 4 children of a parent cell are present
  /// at some level, they are replaced by the parent cell (GeoReach's
  /// MERGE_COUNT policy). Also removes cells covered by coarser cells
  /// already in the set. Returns the canonicalized set, sorted.
  std::vector<GridCell> MergeCells(std::vector<GridCell> cells,
                                   int merge_count) const;

 private:
  Rect space_;
  int depth_;
  double cell_width_;   // level-0 cell width
  double cell_height_;  // level-0 cell height
};

}  // namespace gsr

#endif  // GSR_SPATIAL_HIERARCHICAL_GRID_H_
