#include "spatial/hierarchical_grid.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace gsr {

std::string GridCell::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "L%u(%u,%u)", level, ix, iy);
  return buf;
}

HierarchicalGrid::HierarchicalGrid(const Rect& space, int depth)
    : space_(space), depth_(depth) {
  GSR_CHECK(!space.IsEmpty());
  GSR_CHECK(depth >= 0 && depth <= 27);
  const double cells = static_cast<double>(1u << depth);
  cell_width_ = space.Width() / cells;
  cell_height_ = space.Height() / cells;
  // Degenerate (zero-extent) spaces still need nonzero cell sizes so that
  // Locate() stays well-defined.
  if (cell_width_ <= 0.0) cell_width_ = 1.0;
  if (cell_height_ <= 0.0) cell_height_ = 1.0;
}

GridCell HierarchicalGrid::Locate(const Point2D& p, int level) const {
  GSR_DCHECK(level >= 0 && level <= depth_);
  const uint32_t per_axis = CellsPerAxis(level);
  const double w = cell_width_ * static_cast<double>(1u << level);
  const double h = cell_height_ * static_cast<double>(1u << level);
  auto clamp_index = [per_axis](double value) {
    if (value < 0.0) return 0u;
    const uint32_t idx = static_cast<uint32_t>(value);
    return std::min(idx, per_axis - 1);
  };
  return GridCell{static_cast<uint8_t>(level),
                  clamp_index((p.x - space_.min_x) / w),
                  clamp_index((p.y - space_.min_y) / h)};
}

Rect HierarchicalGrid::CellRect(const GridCell& cell) const {
  const double w = cell_width_ * static_cast<double>(1u << cell.level);
  const double h = cell_height_ * static_cast<double>(1u << cell.level);
  const double x0 = space_.min_x + w * cell.ix;
  const double y0 = space_.min_y + h * cell.iy;
  return Rect(x0, y0, x0 + w, y0 + h);
}

bool HierarchicalGrid::Covers(const GridCell& a, const GridCell& b) const {
  if (a.level < b.level) return false;
  const uint32_t shift = a.level - b.level;
  return (b.ix >> shift) == a.ix && (b.iy >> shift) == a.iy;
}

std::vector<GridCell> HierarchicalGrid::MergeCells(std::vector<GridCell> cells,
                                                   int merge_count) const {
  GSR_CHECK(merge_count >= 0);
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());

  // Bottom-up pass: replace quad-sibling groups larger than merge_count by
  // their parent. A merge at level l can enable a merge at level l+1, so we
  // sweep level by level.
  for (int level = 0; level < depth_; ++level) {
    // Group this level's cells by parent.
    std::map<uint64_t, std::vector<size_t>> by_parent;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].level != level) continue;
      by_parent[Parent(cells[i]).Pack()].push_back(i);
    }
    std::vector<bool> drop(cells.size(), false);
    std::vector<GridCell> promoted;
    for (const auto& [parent_key, members] : by_parent) {
      if (static_cast<int>(members.size()) <= merge_count) continue;
      for (size_t idx : members) drop[idx] = true;
      promoted.push_back(
          GridCell{static_cast<uint8_t>(level + 1),
                   static_cast<uint32_t>((parent_key >> 0) & 0x0FFFFFFF),
                   static_cast<uint32_t>((parent_key >> 28) & 0x0FFFFFFF)});
    }
    if (promoted.empty()) continue;
    std::vector<GridCell> next;
    next.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      if (!drop[i]) next.push_back(cells[i]);
    }
    next.insert(next.end(), promoted.begin(), promoted.end());
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    cells = std::move(next);
  }

  // Remove cells covered by a coarser cell in the set.
  std::vector<GridCell> result;
  result.reserve(cells.size());
  for (const GridCell& c : cells) {
    bool covered = false;
    for (const GridCell& other : cells) {
      if (other.level > c.level && Covers(other, c)) {
        covered = true;
        break;
      }
    }
    if (!covered) result.push_back(c);
  }
  return result;
}

}  // namespace gsr
