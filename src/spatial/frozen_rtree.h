#ifndef GSR_SPATIAL_FROZEN_RTREE_H_
#define GSR_SPATIAL_FROZEN_RTREE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/binary_io.h"
#include "common/paged_array.h"
#include "common/simd.h"
#include "spatial/rtree.h"

namespace gsr {

/// The immutable, cache-compact form of a built RTree: every node packed
/// into one contiguous array in breadth-first order, with all child boxes,
/// child links, leaf geometries and leaf ids pooled into four flat arrays
/// (SoA) — the spatial analogue of FlatLabelStore. Five allocations for
/// the whole tree instead of four vectors per node, so a query descent
/// touches sequential memory and the tree serializes as raw byte ranges.
///
/// The five arrays have three possible backings:
///  - owned after Freeze (and owned-copy Deserialize);
///  - borrowed zero-copy from a memory-mapped snapshot section
///    (Deserialize with BorrowContext::borrow, `keepalive_` pinning the
///    mapping);
///  - PAGED: left on disk entirely (Deserialize with BorrowContext::paged)
///    and read through a PagedSource at query time. Descents then run on
///    a stack-constructed PagedView whose cursors pin one cache page per
///    array; everything else — traversal order, kernels, answers — is
///    identical, which is how kPaged keeps the bit-identical contract.
///    In the page-aligned snapshot format the 64-byte Node<Box3D> records
///    tile 4 KiB pages exactly (a BFS level never straddles a page
///    mid-node); smaller node types occasionally straddle and take the
///    cursor's bounce-buffer path.
///
/// Entry and child order are preserved exactly from the source RTree, and
/// ForEachIntersecting recurses in the same order, so a frozen tree
/// enumerates hits in the identical sequence — methods answer
/// bit-identically whether they query the dynamic or the frozen form.
template <typename BoxT, typename LeafT = BoxT>
class FrozenRTree {
 public:
  /// One packed node. `first`/`count` index into the child arrays for
  /// internal nodes and into the leaf arrays for leaves. Fixed-size and
  /// padding-free so node arrays serialize/mmap as raw bytes.
  struct Node {
    BoxT mbr;
    uint32_t first = 0;
    uint32_t count = 0;
    uint32_t is_leaf = 1;
    uint32_t reserved = 0;  // Explicit padding, always zero on disk.
  };
  static_assert(std::is_trivially_copyable_v<Node>);
  static_assert(sizeof(Node) == sizeof(BoxT) + 16);

  FrozenRTree() = default;
  FrozenRTree(FrozenRTree&&) = default;
  FrozenRTree& operator=(FrozenRTree&&) = default;
  FrozenRTree(const FrozenRTree&) = delete;
  FrozenRTree& operator=(const FrozenRTree&) = delete;

  /// Packs `tree` into the frozen layout (node 0 is the root; nodes are
  /// laid out level by level). The dynamic tree is left untouched and is
  /// typically discarded right after.
  static FrozenRTree Freeze(const RTree<BoxT, LeafT>& tree);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int Height() const { return height_; }
  bool paged() const { return paged_; }

  BoxT Bounds() const { return NumNodes() == 0 ? BoxT() : root_mbr_; }

  /// Calls `fn(geom, id)` for every entry intersecting `query` until `fn`
  /// returns false, in exactly the order the source RTree would. Returns
  /// true when the visit was stopped early.
  template <typename Fn>
  bool ForEachIntersecting(const BoxT& query, Fn&& fn) const {
    if (NumNodes() == 0) return false;
    if (paged_) {
      PagedView view(*this);
      return VisitIntersecting(view, 0, query, fn);
    }
    ResidentView view(*this);
    return VisitIntersecting(view, 0, query, fn);
  }

  /// True iff at least one entry intersects `query`. Existence probes
  /// take a dedicated branchy descent instead of the SIMD batch pass:
  /// positive probes typically resolve on the first intersecting entry,
  /// and a per-entry test exits there, where the batch kernel would pay
  /// for the whole node before looking at a single bit (3DReach issues
  /// millions of these per second; see EXPERIMENTS.md).
  bool AnyIntersecting(const BoxT& query) const {
    if (NumNodes() == 0) return false;
    if (paged_) {
      PagedView view(*this);
      return VisitAny(view, 0, query);
    }
    ResidentView view(*this);
    return VisitAny(view, 0, query);
  }

  /// Multi-query existence probe, the work-sharing form of
  /// AnyIntersecting: queries[k] participates iff bit k of `pending` is
  /// set (k < simd::kMaskWidth); the returned mask has bit k set iff at
  /// least one entry intersects queries[k]. One descent answers the whole
  /// mask — a node is entered once for the subset of still-unanswered
  /// queries that overlap it, and a visited leaf tests its entries with
  /// the batch mask kernel once per live query instead of once per
  /// (query, descent). Answers are exactly those of per-query
  /// AnyIntersecting calls. Subtrees down to a single live query drop
  /// into the branchy first-hit descent, which is the faster shape there
  /// (see AnyIntersecting).
  uint64_t AnyIntersectingMasked(const BoxT* queries, uint64_t pending) const {
    if (NumNodes() == 0 || pending == 0) return 0;
    uint64_t found = 0;
    if (paged_) {
      PagedView view(*this);
      VisitAnyMasked(view, 0, queries, pending, pending, found);
    } else {
      ResidentView view(*this);
      VisitAnyMasked(view, 0, queries, pending, pending, found);
    }
    return found;
  }

  std::vector<uint64_t> CollectIntersecting(const BoxT& query) const {
    std::vector<uint64_t> out;
    ForEachIntersecting(query, [&out](const LeafT&, uint64_t id) {
      out.push_back(id);
      return true;
    });
    return out;
  }

  /// Multi-query *enumeration*, the collection analogue of
  /// AnyIntersectingMasked: calls `fn(k, geom, id)` for every pair of a
  /// live query k (bit k of `mask` set, k < simd::kMaskWidth) and an
  /// entry intersecting queries[k]. One descent serves the whole mask —
  /// a node is entered once for the subset of queries overlapping it,
  /// and a leaf chunk runs one mask-kernel call per live query instead
  /// of once per (query, descent). Unlike the existence probe there is
  /// no early exit: collection sinks consume every hit, so the whole
  /// intersecting subtree is walked. For any fixed k, hits arrive in
  /// exactly ForEachIntersecting(queries[k]) order (chunks in packed
  /// order, set bits consumed low-to-high); hits of different queries
  /// interleave.
  template <typename Fn>
  void ForEachIntersectingMasked(const BoxT* queries, uint64_t mask,
                                 Fn&& fn) const {
    if (NumNodes() == 0 || mask == 0) return;
    if (paged_) {
      PagedView view(*this);
      VisitIntersectingMasked(view, 0, queries, mask, fn);
    } else {
      ResidentView view(*this);
      VisitIntersectingMasked(view, 0, queries, mask, fn);
    }
  }

  /// Materializing form of ForEachIntersectingMasked for tests and
  /// simple callers: entry ids of query k land in out[k], in the same
  /// order CollectIntersecting(queries[k]) would produce.
  void CollectIntersectingMasked(const BoxT* queries, uint64_t mask,
                                 std::span<std::vector<uint64_t>> out) const {
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      out[static_cast<size_t>(std::countr_zero(m))].clear();
    }
    ForEachIntersectingMasked(
        queries, mask,
        [&out](size_t k, const LeafT&, uint64_t id) { out[k].push_back(id); });
  }

  /// Bytes referenced by the packed arrays — owned heap, borrowed
  /// mapping, or on-disk pages in paged mode.
  size_t SizeBytes() const {
    return NumNodes() * sizeof(Node) +
           NumChildEntries() * (sizeof(BoxT) + sizeof(uint32_t)) +
           NumLeafEntries() * (sizeof(LeafT) + sizeof(uint64_t));
  }

  /// Writes the header and the five packed arrays (snapshot layer).
  /// Paged-loaded trees cannot be re-serialized (their arrays live on
  /// disk); save from a built or resident-loaded instance instead.
  void SerializeTo(BinaryWriter& w) const;

  /// Restores a tree from `r`. With `ctx.borrow` all arrays stay
  /// zero-copy views into the reader's buffer; with `ctx.paged` they stay
  /// on disk behind the page cache. Node ranges and child links are
  /// validated either way (against the temporarily materialized section)
  /// so a structurally corrupt file errors out instead of reading out of
  /// bounds at query time.
  static Result<FrozenRTree> Deserialize(BinaryReader& r,
                                         const BorrowContext& ctx);

 private:
  /// Resident data access: direct span indexing plus software prefetch.
  /// The chunk accessors return pointers into the spans; `scratch` is
  /// unused. Compiles down to exactly the pre-paging descent code.
  struct ResidentView {
    explicit ResidentView(const FrozenRTree& tree) : t(tree) {}
    const Node& GetNode(uint32_t i) const { return t.nodes_[i]; }
    const BoxT& ChildBox(uint32_t i) const { return t.child_boxes_[i]; }
    const BoxT* ChildBoxes(uint32_t base, uint32_t) const {
      return &t.child_boxes_[base];
    }
    uint32_t ChildNode(uint32_t i) const { return t.child_nodes_[i]; }
    const uint32_t* ChildNodes(uint32_t base, uint32_t, uint32_t*) const {
      return &t.child_nodes_[base];
    }
    const LeafT& LeafGeom(uint32_t i) const { return t.leaf_geoms_[i]; }
    const LeafT* LeafGeoms(uint32_t base, uint32_t) const {
      return &t.leaf_geoms_[base];
    }
    uint64_t LeafId(uint32_t i) const { return t.leaf_ids_[i]; }
    void PrefetchNode(uint32_t i) const { simd::PrefetchRead(&t.nodes_[i]); }
    const FrozenRTree& t;
  };

  /// Paged data access: one cursor per on-disk array, each pinning at
  /// most one cache page. Chunk pointers are valid until the next call on
  /// the SAME cursor, so descents copy child node ids into caller
  /// `scratch` before recursing (the recursion reuses the cursors) and
  /// consume box/geom chunk pointers before any other same-array access.
  /// Node records and single elements travel by value. Hardware prefetch
  /// of node records is meaningless here, so PrefetchNode is a no-op;
  /// sequential readahead happens at the page level instead.
  struct PagedView {
    explicit PagedView(const FrozenRTree& tree)
        : nodes(tree.paged_nodes_),
          child_boxes(tree.paged_child_boxes_),
          child_nodes(tree.paged_child_nodes_),
          leaf_geoms(tree.paged_leaf_geoms_),
          leaf_ids(tree.paged_leaf_ids_) {}
    Node GetNode(uint32_t i) { return nodes.At(i); }
    BoxT ChildBox(uint32_t i) { return child_boxes.At(i); }
    const BoxT* ChildBoxes(uint32_t base, uint32_t n) {
      return child_boxes.Chunk(base, n);
    }
    uint32_t ChildNode(uint32_t i) { return child_nodes.At(i); }
    const uint32_t* ChildNodes(uint32_t base, uint32_t n, uint32_t* scratch) {
      child_nodes.ReadInto(base, n, scratch);
      return scratch;
    }
    LeafT LeafGeom(uint32_t i) { return leaf_geoms.At(i); }
    const LeafT* LeafGeoms(uint32_t base, uint32_t n) {
      return leaf_geoms.Chunk(base, n);
    }
    uint64_t LeafId(uint32_t i) { return leaf_ids.At(i); }
    void PrefetchNode(uint32_t) const {}
    PagedArrayCursor<Node, 1> nodes;
    PagedArrayCursor<BoxT, simd::kMaskWidth> child_boxes;
    PagedArrayCursor<uint32_t, simd::kMaskWidth> child_nodes;
    PagedArrayCursor<LeafT, simd::kMaskWidth> leaf_geoms;
    PagedArrayCursor<uint64_t, 1> leaf_ids;
  };

  size_t NumNodes() const {
    return paged_ ? paged_nodes_.count : nodes_.size();
  }
  size_t NumChildEntries() const {
    return paged_ ? paged_child_nodes_.count : child_nodes_.size();
  }
  size_t NumLeafEntries() const {
    return paged_ ? paged_leaf_ids_.count : leaf_ids_.size();
  }

  /// SIMD descent: tests a whole node's entries in one mask-kernel call
  /// per <= kMaskWidth chunk instead of one predicate per entry. Set bits
  /// are consumed low-to-high, so entries are still visited in exactly
  /// the packed (source RTree) order — the bit-identical-answers
  /// contract. Before recursing, the matched children's node records are
  /// software-prefetched so the next level is (mostly) in cache by the
  /// time the recursion reaches it.
  template <typename View, typename Fn>
  bool VisitIntersecting(View& view, uint32_t node_idx, const BoxT& query,
                         Fn& fn) const {
    const Node& node = view.GetNode(node_idx);
    const uint32_t end = node.first + node.count;
    if (node.is_leaf) {
      for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
        const uint32_t chunk =
            std::min<uint32_t>(simd::kMaskWidth, end - base);
        const LeafT* geoms = view.LeafGeoms(base, chunk);
        uint64_t mask = simd::IntersectMask(query, geoms, chunk);
        while (mask != 0) {
          const uint32_t i = static_cast<uint32_t>(std::countr_zero(mask));
          mask &= mask - 1;
          if (!fn(geoms[i], view.LeafId(base + i))) return true;
        }
      }
      return false;
    }
    for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
      const uint32_t chunk = std::min<uint32_t>(simd::kMaskWidth, end - base);
      uint64_t mask =
          simd::IntersectMask(query, view.ChildBoxes(base, chunk), chunk);
      if (mask == 0) continue;
      uint32_t scratch[simd::kMaskWidth];
      const uint32_t* kids = view.ChildNodes(base, chunk, scratch);
      for (uint64_t m = mask; m != 0; m &= m - 1) {
        view.PrefetchNode(kids[std::countr_zero(m)]);
      }
      while (mask != 0) {
        const uint32_t c = static_cast<uint32_t>(std::countr_zero(mask));
        mask &= mask - 1;
        if (VisitIntersecting(view, kids[c], query, fn)) return true;
      }
    }
    return false;
  }

  /// Shared descent behind ForEachIntersectingMasked. `mask` is the set
  /// of queries whose box intersects this node (an overestimate is fine:
  /// the root starts with all live queries). Leaves run the batch
  /// intersect kernel once per live query per chunk and hand every set
  /// bit to `fn`; internal nodes transpose per-query child masks exactly
  /// like VisitAnyMasked, then enter children in packed order with the
  /// matched node records prefetched.
  template <typename View, typename Fn>
  void VisitIntersectingMasked(View& view, uint32_t node_idx,
                               const BoxT* queries, uint64_t mask,
                               Fn& fn) const {
    const Node& node = view.GetNode(node_idx);
    const uint32_t end = node.first + node.count;
    if (node.is_leaf) {
      for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
        const uint32_t chunk = std::min<uint32_t>(simd::kMaskWidth, end - base);
        const LeafT* geoms = view.LeafGeoms(base, chunk);
        for (uint64_t m = mask; m != 0; m &= m - 1) {
          const size_t k = static_cast<size_t>(std::countr_zero(m));
          uint64_t hits = simd::IntersectMask(queries[k], geoms, chunk);
          while (hits != 0) {
            const uint32_t i = static_cast<uint32_t>(std::countr_zero(hits));
            hits &= hits - 1;
            fn(k, geoms[i], view.LeafId(base + i));
          }
        }
      }
      return;
    }
    for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
      const uint32_t chunk = std::min<uint32_t>(simd::kMaskWidth, end - base);
      uint64_t child_masks[simd::kMaskWidth] = {};
      const BoxT* boxes = view.ChildBoxes(base, chunk);
      for (uint64_t m = mask; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        uint64_t hits = simd::IntersectMask(queries[k], boxes, chunk);
        while (hits != 0) {
          child_masks[std::countr_zero(hits)] |= uint64_t{1} << k;
          hits &= hits - 1;
        }
      }
      uint32_t scratch[simd::kMaskWidth];
      const uint32_t* kids = view.ChildNodes(base, chunk, scratch);
      for (uint32_t c = 0; c < chunk; ++c) {
        if (child_masks[c] == 0) continue;
        view.PrefetchNode(kids[c]);
      }
      for (uint32_t c = 0; c < chunk; ++c) {
        if (child_masks[c] == 0) continue;
        VisitIntersectingMasked(view, kids[c], queries, child_masks[c], fn);
      }
    }
  }

  /// First-hit existence descent (see AnyIntersecting). Per-element view
  /// access keeps the early exit exact: one box test, then recurse.
  template <typename View>
  bool VisitAny(View& view, uint32_t node_idx, const BoxT& query) const {
    const Node& node = view.GetNode(node_idx);
    const uint32_t end = node.first + node.count;
    if (node.is_leaf) {
      for (uint32_t i = node.first; i < end; ++i) {
        if (GeomIntersects(query, view.LeafGeom(i))) return true;
      }
      return false;
    }
    for (uint32_t i = node.first; i < end; ++i) {
      if (!view.ChildBox(i).Intersects(query)) continue;
      if (VisitAny(view, view.ChildNode(i), query)) return true;
    }
    return false;
  }

  /// Shared descent behind AnyIntersectingMasked. `mask` is the set of
  /// queries whose box intersects this node (an overestimate is fine:
  /// the root starts with all of them); `pending`/`found` are the global
  /// not-yet-answered and answered sets, updated as hits come in.
  template <typename View>
  void VisitAnyMasked(View& view, uint32_t node_idx, const BoxT* queries,
                      uint64_t mask, uint64_t& pending,
                      uint64_t& found) const {
    mask &= pending;
    if (mask == 0) return;
    if (std::has_single_bit(mask)) {
      // One live query left in this subtree: the branchy first-hit
      // descent beats the batch kernels (positive probes resolve on the
      // first intersecting entry).
      if (VisitAny(view, node_idx, queries[std::countr_zero(mask)])) {
        found |= mask;
        pending &= ~mask;
      }
      return;
    }
    const Node& node = view.GetNode(node_idx);
    const uint32_t end = node.first + node.count;
    if (node.is_leaf) {
      for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
        const uint32_t chunk = std::min<uint32_t>(simd::kMaskWidth, end - base);
        const LeafT* geoms = view.LeafGeoms(base, chunk);
        for (uint64_t m = mask & pending; m != 0; m &= m - 1) {
          const uint64_t bit = m & (~m + 1);
          const int k = std::countr_zero(m);
          if (simd::IntersectMask(queries[k], geoms, chunk) != 0) {
            found |= bit;
            pending &= ~bit;
          }
        }
        if ((mask & pending) == 0) return;
      }
      return;
    }
    // Internal node: one batch-kernel call per (live query, child chunk)
    // yields that query's intersecting children; transposing the results
    // gives each child its query mask. Children are then entered in
    // packed order, so the visit order (and with it every answer) is
    // identical to the scalar double loop.
    for (uint32_t base = node.first; base < end; base += simd::kMaskWidth) {
      const uint32_t chunk = std::min<uint32_t>(simd::kMaskWidth, end - base);
      uint64_t child_masks[simd::kMaskWidth] = {};
      const BoxT* boxes = view.ChildBoxes(base, chunk);
      for (uint64_t m = mask & pending; m != 0; m &= m - 1) {
        const int k = std::countr_zero(m);
        uint64_t hits = simd::IntersectMask(queries[k], boxes, chunk);
        while (hits != 0) {
          child_masks[std::countr_zero(hits)] |= uint64_t{1} << k;
          hits &= hits - 1;
        }
      }
      uint32_t scratch[simd::kMaskWidth];
      const uint32_t* kids = view.ChildNodes(base, chunk, scratch);
      for (uint32_t c = 0; c < chunk; ++c) {
        if (child_masks[c] == 0) continue;
        VisitAnyMasked(view, kids[c], queries, child_masks[c], pending,
                       found);
        if ((mask & pending) == 0) return;
      }
    }
  }

  std::span<const Node> nodes_;
  std::span<const BoxT> child_boxes_;
  std::span<const uint32_t> child_nodes_;
  std::span<const LeafT> leaf_geoms_;
  std::span<const uint64_t> leaf_ids_;
  size_t size_ = 0;
  int height_ = 0;
  BoxT root_mbr_ = BoxT();

  // Backing storage when the tree owns its memory (empty when borrowed).
  std::vector<Node> owned_nodes_;
  std::vector<BoxT> owned_child_boxes_;
  std::vector<uint32_t> owned_child_nodes_;
  std::vector<LeafT> owned_leaf_geoms_;
  std::vector<uint64_t> owned_leaf_ids_;
  std::shared_ptr<const void> keepalive_;

  // On-disk backing in paged mode (the spans above stay empty then).
  bool paged_ = false;
  PagedArray<Node> paged_nodes_;
  PagedArray<BoxT> paged_child_boxes_;
  PagedArray<uint32_t> paged_child_nodes_;
  PagedArray<LeafT> paged_leaf_geoms_;
  PagedArray<uint64_t> paged_leaf_ids_;
};

/// Frozen counterparts of the four RTree instantiations.
using FrozenRTree2D = FrozenRTree<Rect, Rect>;
using FrozenRTreePoints2D = FrozenRTree<Rect, Point2D>;
using FrozenRTree3D = FrozenRTree<Box3D, Box3D>;
using FrozenRTreePoints3D = FrozenRTree<Box3D, Point3D>;

extern template class FrozenRTree<Rect, Rect>;
extern template class FrozenRTree<Rect, Point2D>;
extern template class FrozenRTree<Box3D, Box3D>;
extern template class FrozenRTree<Box3D, Point3D>;

}  // namespace gsr

#endif  // GSR_SPATIAL_FROZEN_RTREE_H_
