#ifndef GSR_SPATIAL_GRID_HISTOGRAM_H_
#define GSR_SPATIAL_GRID_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "geometry/geometry.h"

namespace gsr {

/// A uniform-grid equi-width histogram over a point set, with prefix sums
/// for O(1) rectangle-count estimation. The workload generator uses it to
/// size query regions for a target spatial selectivity before refining with
/// the exact R-tree count.
class GridHistogram {
 public:
  /// Builds a `resolution x resolution` histogram over the MBR of `points`.
  GridHistogram(const std::vector<Point2D>& points, int resolution);

  const Rect& bounds() const { return bounds_; }
  int resolution() const { return resolution_; }
  uint64_t total_count() const { return total_; }

  /// Estimated number of points inside `query`, using partial-cell
  /// area-fraction interpolation at the boundary.
  double EstimateCount(const Rect& query) const;

  /// Estimated selectivity of `query` as a fraction of all points.
  double EstimateSelectivity(const Rect& query) const {
    if (total_ == 0) return 0.0;
    return EstimateCount(query) / static_cast<double>(total_);
  }

 private:
  /// Exact count of points in the cell block [0..ix] x [0..iy] via the
  /// inclusive 2-D prefix-sum table.
  uint64_t PrefixAt(int ix, int iy) const;

  Rect bounds_;
  int resolution_;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  uint64_t total_ = 0;
  std::vector<uint64_t> prefix_;  // (resolution x resolution), row-major
};

}  // namespace gsr

#endif  // GSR_SPATIAL_GRID_HISTOGRAM_H_
