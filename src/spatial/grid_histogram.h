#ifndef GSR_SPATIAL_GRID_HISTOGRAM_H_
#define GSR_SPATIAL_GRID_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "geometry/geometry.h"

namespace gsr {

/// A uniform-grid equi-width histogram over a point set, with prefix sums
/// for O(1) rectangle-count estimation. The workload generator uses it to
/// size query regions for a target spatial selectivity before refining with
/// the exact R-tree count; the query planner uses it both as the cost-model
/// selectivity input and — through DefinitelyEmpty — as an exact
/// empty-region rejection in front of every method.
class GridHistogram {
 public:
  /// Builds a `resolution x resolution` histogram over the MBR of `points`.
  GridHistogram(const std::vector<Point2D>& points, int resolution);

  const Rect& bounds() const { return bounds_; }
  int resolution() const { return resolution_; }
  uint64_t total_count() const { return total_; }

  /// Estimated number of points inside `query`, using partial-cell
  /// area-fraction interpolation at the boundary.
  double EstimateCount(const Rect& query) const;

  /// Estimated selectivity of `query` as a fraction of all points.
  double EstimateSelectivity(const Rect& query) const {
    if (total_ == 0) return 0.0;
    return EstimateCount(query) / static_cast<double>(total_);
  }

  /// O(1) upper-bound count via the same four-prefix block sum as
  /// DefinitelyEmpty: every cell the query touches is counted in full,
  /// so boundary cells over-contribute (by up to their contents) but the
  /// bound is monotone in the query and never below the exact count.
  /// This is the planner's per-query routing feature — EstimateCount's
  /// boundary interpolation walks the block perimeter, too slow to pay
  /// on every routed query.
  uint64_t BlockCount(const Rect& query) const;

  /// Exact O(1) emptiness proof: true only when *no* indexed point can
  /// lie inside `query`. Unlike EstimateCount this never interpolates —
  /// it block-sums every cell the query touches via four prefix lookups,
  /// so a true verdict settles the query (the planner answers FALSE for
  /// every query kind without routing). False only means "some touched
  /// cell is occupied", which is not a containment proof.
  bool DefinitelyEmpty(const Rect& query) const { return BlockCount(query) == 0; }

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const {
    return sizeof(*this) + prefix_.size() * sizeof(uint64_t);
  }

  /// Snapshot layer: writes bounds, geometry and the prefix table;
  /// Deserialize restores an identical (owned) instance.
  void SerializeTo(BinaryWriter& w) const;
  static Result<GridHistogram> Deserialize(BinaryReader& r);

 private:
  // The planner embeds a GridHistogram by value and fills it after its
  // members are built, so it may default-construct one.
  friend class PlannedMethod;

  GridHistogram() = default;

  /// Exact count of points in the cell block [0..ix] x [0..iy] via the
  /// inclusive 2-D prefix-sum table.
  uint64_t PrefixAt(int ix, int iy) const;

  Rect bounds_;
  int resolution_;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  uint64_t total_ = 0;
  std::vector<uint64_t> prefix_;  // (resolution x resolution), row-major
};

}  // namespace gsr

#endif  // GSR_SPATIAL_GRID_HISTOGRAM_H_
