#include "spatial/grid_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gsr {

GridHistogram::GridHistogram(const std::vector<Point2D>& points,
                             int resolution)
    : resolution_(resolution) {
  GSR_CHECK(resolution >= 1);
  for (const Point2D& p : points) bounds_.Expand(p);
  if (bounds_.IsEmpty()) bounds_ = Rect(0, 0, 1, 1);
  // Inflate degenerate axes so boundary-cell overlap fractions stay
  // meaningful (a zero-extent bounds would clip every query to measure 0).
  if (bounds_.Width() <= 0.0) bounds_.max_x = bounds_.min_x + 1.0;
  if (bounds_.Height() <= 0.0) bounds_.max_y = bounds_.min_y + 1.0;
  cell_w_ = bounds_.Width() / resolution;
  cell_h_ = bounds_.Height() / resolution;
  if (cell_w_ <= 0.0) cell_w_ = 1.0;
  if (cell_h_ <= 0.0) cell_h_ = 1.0;

  std::vector<uint64_t> counts(
      static_cast<size_t>(resolution) * static_cast<size_t>(resolution), 0);
  auto cell_index = [this](double value, double origin, double width) {
    const double f = (value - origin) / width;
    int idx = static_cast<int>(f);
    return std::clamp(idx, 0, resolution_ - 1);
  };
  for (const Point2D& p : points) {
    const int ix = cell_index(p.x, bounds_.min_x, cell_w_);
    const int iy = cell_index(p.y, bounds_.min_y, cell_h_);
    ++counts[static_cast<size_t>(iy) * resolution_ + ix];
  }
  total_ = points.size();

  // Inclusive 2-D prefix sums.
  prefix_.assign(counts.size(), 0);
  for (int iy = 0; iy < resolution_; ++iy) {
    uint64_t row = 0;
    for (int ix = 0; ix < resolution_; ++ix) {
      row += counts[static_cast<size_t>(iy) * resolution_ + ix];
      prefix_[static_cast<size_t>(iy) * resolution_ + ix] =
          row + (iy > 0 ? prefix_[static_cast<size_t>(iy - 1) * resolution_ + ix]
                        : 0);
    }
  }
}

uint64_t GridHistogram::PrefixAt(int ix, int iy) const {
  if (ix < 0 || iy < 0) return 0;
  ix = std::min(ix, resolution_ - 1);
  iy = std::min(iy, resolution_ - 1);
  return prefix_[static_cast<size_t>(iy) * resolution_ + ix];
}

double GridHistogram::EstimateCount(const Rect& query) const {
  if (query.IsEmpty() || !query.Intersects(bounds_)) return 0.0;
  const double qx0 = std::max(query.min_x, bounds_.min_x);
  const double qy0 = std::max(query.min_y, bounds_.min_y);
  const double qx1 = std::min(query.max_x, bounds_.max_x);
  const double qy1 = std::min(query.max_y, bounds_.max_y);

  const int ix0 = std::clamp(
      static_cast<int>((qx0 - bounds_.min_x) / cell_w_), 0, resolution_ - 1);
  const int iy0 = std::clamp(
      static_cast<int>((qy0 - bounds_.min_y) / cell_h_), 0, resolution_ - 1);
  const int ix1 = std::clamp(
      static_cast<int>((qx1 - bounds_.min_x) / cell_w_), 0, resolution_ - 1);
  const int iy1 = std::clamp(
      static_cast<int>((qy1 - bounds_.min_y) / cell_h_), 0, resolution_ - 1);

  auto cell_count = [this](int ix, int iy) -> uint64_t {
    return PrefixAt(ix, iy) - PrefixAt(ix - 1, iy) - PrefixAt(ix, iy - 1) +
           PrefixAt(ix - 1, iy - 1);
  };
  auto overlap_fraction = [&](int ix, int iy) {
    const double cx0 = bounds_.min_x + ix * cell_w_;
    const double cy0 = bounds_.min_y + iy * cell_h_;
    const double ox = std::max(
        0.0, std::min(qx1, cx0 + cell_w_) - std::max(qx0, cx0));
    const double oy = std::max(
        0.0, std::min(qy1, cy0 + cell_h_) - std::max(qy0, cy0));
    return (ox / cell_w_) * (oy / cell_h_);
  };

  double estimate = 0.0;
  // Fully covered interior block in O(1) via prefix sums.
  const int fx0 = ix0 + 1;
  const int fy0 = iy0 + 1;
  const int fx1 = ix1 - 1;
  const int fy1 = iy1 - 1;
  if (fx0 <= fx1 && fy0 <= fy1) {
    estimate += static_cast<double>(PrefixAt(fx1, fy1) -
                                    PrefixAt(fx0 - 1, fy1) -
                                    PrefixAt(fx1, fy0 - 1) +
                                    PrefixAt(fx0 - 1, fy0 - 1));
  }
  // Boundary cells, weighted by area overlap. Only the perimeter of the
  // touched block is partially covered, so walk exactly it — O(W+H), not
  // the O(W*H) full-block scan that made large-region estimates cost
  // thousands of iterations (the planner pays this on every routed
  // query's cost estimate).
  auto add_boundary = [&](int ix, int iy) {
    estimate +=
        static_cast<double>(cell_count(ix, iy)) * overlap_fraction(ix, iy);
  };
  for (int ix = ix0; ix <= ix1; ++ix) {
    add_boundary(ix, iy0);
    if (iy1 != iy0) add_boundary(ix, iy1);
  }
  for (int iy = iy0 + 1; iy <= iy1 - 1; ++iy) {
    add_boundary(ix0, iy);
    if (ix1 != ix0) add_boundary(ix1, iy);
  }
  return estimate;
}

uint64_t GridHistogram::BlockCount(const Rect& query) const {
  if (query.IsEmpty()) return 0;
  // Every indexed point lies inside bounds_ (it is the point MBR), so a
  // disjoint query provably contains none.
  if (!query.Intersects(bounds_)) return 0;
  // Cell range the clamped query touches. Both the construction-time
  // point bucketing and this clamp use the same floor-then-clamp
  // mapping, which is monotone: a point inside the query always lands
  // in a cell of [ix0..ix1] x [iy0..iy1], so a zero block count is an
  // exact emptiness proof.
  const double qx0 = std::max(query.min_x, bounds_.min_x);
  const double qy0 = std::max(query.min_y, bounds_.min_y);
  const double qx1 = std::min(query.max_x, bounds_.max_x);
  const double qy1 = std::min(query.max_y, bounds_.max_y);
  const int ix0 = std::clamp(
      static_cast<int>((qx0 - bounds_.min_x) / cell_w_), 0, resolution_ - 1);
  const int iy0 = std::clamp(
      static_cast<int>((qy0 - bounds_.min_y) / cell_h_), 0, resolution_ - 1);
  const int ix1 = std::clamp(
      static_cast<int>((qx1 - bounds_.min_x) / cell_w_), 0, resolution_ - 1);
  const int iy1 = std::clamp(
      static_cast<int>((qy1 - bounds_.min_y) / cell_h_), 0, resolution_ - 1);
  return PrefixAt(ix1, iy1) - PrefixAt(ix0 - 1, iy1) -
         PrefixAt(ix1, iy0 - 1) + PrefixAt(ix0 - 1, iy0 - 1);
}

void GridHistogram::SerializeTo(BinaryWriter& w) const {
  w.WriteF64(bounds_.min_x);
  w.WriteF64(bounds_.min_y);
  w.WriteF64(bounds_.max_x);
  w.WriteF64(bounds_.max_y);
  w.WriteI32(resolution_);
  w.WriteF64(cell_w_);
  w.WriteF64(cell_h_);
  w.WriteU64(total_);
  w.WriteVector(prefix_);
}

Result<GridHistogram> GridHistogram::Deserialize(BinaryReader& r) {
  GridHistogram h;
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.bounds_.min_x));
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.bounds_.min_y));
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.bounds_.max_x));
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.bounds_.max_y));
  GSR_RETURN_IF_ERROR(r.ReadI32(&h.resolution_));
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.cell_w_));
  GSR_RETURN_IF_ERROR(r.ReadF64(&h.cell_h_));
  GSR_RETURN_IF_ERROR(r.ReadU64(&h.total_));
  GSR_RETURN_IF_ERROR(r.ReadVector(&h.prefix_));
  if (h.resolution_ < 1 || h.cell_w_ <= 0.0 || h.cell_h_ <= 0.0 ||
      h.prefix_.size() != static_cast<size_t>(h.resolution_) *
                              static_cast<size_t>(h.resolution_)) {
    return Status::InvalidArgument("grid histogram snapshot: bad geometry");
  }
  return h;
}

}  // namespace gsr
