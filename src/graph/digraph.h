#ifndef GSR_GRAPH_DIGRAPH_H_
#define GSR_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace gsr {

/// Dense vertex identifier in [0, num_vertices).
using VertexId = uint32_t;

/// Sentinel for "no vertex" (e.g. forest roots have no parent).
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

/// An immutable directed graph in compressed-sparse-row form, with both
/// forward (out-neighbor) and reverse (in-neighbor) adjacency so that SCC
/// condensation, in-degree priorities (Algorithm 1) and reversed labeling
/// (3DReach-REV) are all cheap.
class DiGraph {
 public:
  /// Creates the empty graph.
  DiGraph() = default;

  /// Builds a graph with `num_vertices` vertices from an edge list.
  /// Duplicate edges are collapsed and self-loops dropped (both carry no
  /// reachability information). Edges with endpoints >= num_vertices are
  /// rejected.
  static Result<DiGraph> FromEdges(
      VertexId num_vertices, std::vector<std::pair<VertexId, VertexId>> edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }
  uint64_t num_edges() const { return out_targets_.size(); }

  /// Out-neighbors of `v`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    GSR_DCHECK(v < num_vertices());
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors of `v`, sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    GSR_DCHECK(v < num_vertices());
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(VertexId v) const {
    GSR_DCHECK(v < num_vertices());
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  uint32_t InDegree(VertexId v) const {
    GSR_DCHECK(v < num_vertices());
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// True when edge (u, v) exists; O(log OutDegree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Main-memory footprint in bytes.
  size_t SizeBytes() const {
    return sizeof(*this) +
           (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t) +
           (out_targets_.size() + in_sources_.size()) * sizeof(VertexId);
  }

 private:
  std::vector<uint64_t> out_offsets_;
  std::vector<VertexId> out_targets_;
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_sources_;
};

/// The graph with every edge direction flipped. Used to build the
/// *reversed* interval labeling of 3DReach-REV (Section 4.2).
DiGraph ReverseGraph(const DiGraph& graph);

/// Incremental edge-list accumulator for DiGraph. Grows the vertex count
/// on demand; Build() finalizes into CSR form.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `n` vertices (ids 0..n-1).
  void ReserveVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  /// Adds edge (from, to), growing the vertex count to cover both ids.
  void AddEdge(VertexId from, VertexId to) {
    edges_.emplace_back(from, to);
    const VertexId needed = (from > to ? from : to) + 1;
    if (needed > num_vertices_) num_vertices_ = needed;
  }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into an immutable CSR graph; the builder is left empty.
  Result<DiGraph> Build() {
    auto result = DiGraph::FromEdges(num_vertices_, std::move(edges_));
    edges_.clear();
    num_vertices_ = 0;
    return result;
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace gsr

#endif  // GSR_GRAPH_DIGRAPH_H_
