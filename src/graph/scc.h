#ifndef GSR_GRAPH_SCC_H_
#define GSR_GRAPH_SCC_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace gsr {

/// Identifier of a strongly connected component.
using ComponentId = uint32_t;

/// Output of strongly-connected-component decomposition.
struct SccDecomposition {
  /// Number of components.
  uint32_t num_components = 0;
  /// component_of[v] = component containing vertex v.
  std::vector<ComponentId> component_of;
  /// size_of[c] = number of vertices in component c.
  std::vector<uint32_t> size_of;

  /// Size of the largest component (0 for the empty graph).
  uint32_t LargestComponentSize() const;
};

/// Decomposes `graph` into strongly connected components with an iterative
/// Tarjan algorithm (explicit stack, safe for deep graphs).
///
/// Component ids are assigned in *reverse topological order of the
/// condensation*: if the condensation has an edge c1 -> c2 then c1 > c2.
/// This property makes the condensation trivially acyclic and lets callers
/// process components in topological order by iterating ids descending.
SccDecomposition ComputeScc(const DiGraph& graph);

/// The condensation (quotient DAG) of `graph` under `scc`: one vertex per
/// component, deduplicated edges between distinct components. Always a DAG.
DiGraph BuildCondensationGraph(const DiGraph& graph,
                               const SccDecomposition& scc);

/// Groups the vertices of the original graph by component: members of
/// component c are members[offsets[c] .. offsets[c+1]).
struct ComponentMembers {
  std::vector<uint64_t> offsets;
  std::vector<VertexId> members;

  std::span<const VertexId> MembersOf(ComponentId c) const {
    return {members.data() + offsets[c], members.data() + offsets[c + 1]};
  }
};

/// Builds the component -> member-vertices grouping for `scc`.
ComponentMembers GroupByComponent(const SccDecomposition& scc);

}  // namespace gsr

#endif  // GSR_GRAPH_SCC_H_
