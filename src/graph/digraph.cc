#include "graph/digraph.h"

#include <algorithm>
#include <string>

namespace gsr {

Result<DiGraph> DiGraph::FromEdges(
    VertexId num_vertices, std::vector<std::pair<VertexId, VertexId>> edges) {
  for (const auto& [from, to] : edges) {
    if (from >= num_vertices || to >= num_vertices) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(from) + ", " + std::to_string(to) +
          ") references a vertex >= " + std::to_string(num_vertices));
    }
  }

  // Drop self-loops, sort, deduplicate.
  std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  DiGraph g;
  g.out_offsets_.assign(num_vertices + 1, 0);
  g.out_targets_.reserve(edges.size());
  for (const auto& [from, to] : edges) g.out_offsets_[from + 1]++;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  for (const auto& [from, to] : edges) g.out_targets_.push_back(to);

  // Reverse adjacency via counting sort on targets; sources come out sorted
  // per target because `edges` is sorted by (from, to).
  g.in_offsets_.assign(num_vertices + 1, 0);
  for (const auto& [from, to] : edges) g.in_offsets_[to + 1]++;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_sources_.resize(edges.size());
  std::vector<uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const auto& [from, to] : edges) {
    g.in_sources_[cursor[to]++] = from;
  }
  return g;
}

DiGraph ReverseGraph(const DiGraph& graph) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const VertexId w : graph.OutNeighbors(v)) {
      edges.emplace_back(w, v);
    }
  }
  auto result = DiGraph::FromEdges(graph.num_vertices(), std::move(edges));
  GSR_CHECK(result.ok());
  return std::move(result).value();
}

bool DiGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

}  // namespace gsr
