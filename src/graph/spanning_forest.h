#ifndef GSR_GRAPH_SPANNING_FOREST_H_
#define GSR_GRAPH_SPANNING_FOREST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "graph/digraph.h"

namespace gsr {

/// How the spanning forest underlying the interval labeling is grown.
/// Exploring alternative (e.g. shallow) forests is listed as future work
/// in the paper (Section 8); both strategies below produce correct
/// labelings — they differ in tree depth, label counts and build cost.
enum class ForestStrategy {
  /// Depth-first forest (the paper's construction). DFS guarantees
  /// post(u) < post(v) for every edge (v, u), so sorting non-tree edges by
  /// ascending source post directly yields reverse topological order.
  kDfs,
  /// Breadth-first forest: much shallower trees (cheaper ancestor climbs
  /// during label propagation), at the cost of a separate topological sort
  /// to order the non-tree edges.
  kBfs,
};

/// Returns "dfs" or "bfs".
const char* ForestStrategyName(ForestStrategy strategy);

/// A spanning forest of a DAG with post-order numbering, the backbone of
/// the interval-based labeling (Section 3.2 of the paper).
///
/// Geosocial networks have several vertices with only outgoing edges, so a
/// single spanning tree does not exist; instead every zero-in-degree vertex
/// roots one tree of the forest (Algorithm 1, lines 1-4). Post-order
/// numbers are 1-based and increase across trees in root-processing order.
struct SpanningForest {
  /// parent[v] in the forest; kInvalidVertex for roots.
  std::vector<VertexId> parent;
  /// post[v]: the 1-based post-order number of v.
  std::vector<uint32_t> post;
  /// vertex_of_post[p] = the vertex with post-order number p (p in 1..n,
  /// slot 0 unused). This is the post -> vertex permutation SocReach scans.
  std::vector<VertexId> vertex_of_post;
  /// min_post_subtree[v]: the smallest post-order number in v's subtree,
  /// i.e. index(v) of the original interval-labeling scheme. The subtree of
  /// v covers exactly the contiguous post range
  /// [min_post_subtree[v], post[v]].
  std::vector<uint32_t> min_post_subtree;
  /// Roots of the forest, in processing order.
  std::vector<VertexId> roots;
  /// The edges of the graph *not* chosen for the forest (E \ E_F), sorted
  /// so that iterating them processes sources in reverse topological
  /// order — the property the single-pass label-propagation phase of
  /// Algorithm 1 relies on.
  std::vector<std::pair<VertexId, VertexId>> non_tree_edges;

  /// True when u is v or a forest ancestor of v.
  bool IsAncestorOrSelf(VertexId u, VertexId v) const {
    return min_post_subtree[u] <= post[v] && post[v] <= post[u];
  }

  /// Maximum tree depth over all vertices (roots have depth 0). O(n).
  uint32_t MaxDepth() const;
};

/// Serializes the query-relevant forest arrays (parent, post,
/// vertex_of_post, min_post_subtree, roots). `non_tree_edges` is a
/// construction-only artifact and is deliberately not persisted; a
/// deserialized forest answers IsAncestorOrSelf/MaxDepth and backs label
/// lookups, but cannot re-run label propagation.
void SerializeSpanningForest(const SpanningForest& forest, BinaryWriter& w);

/// Inverse of SerializeSpanningForest; validates array-length agreement.
Result<SpanningForest> DeserializeSpanningForest(BinaryReader& r);

/// Builds a spanning forest of `dag` rooted at its zero-in-degree vertices
/// (ascending id order), using the requested strategy. `dag` must be
/// acyclic. Vertices not reachable from any zero-in-degree vertex
/// (impossible in a DAG) would be swept up as extra roots.
SpanningForest BuildSpanningForest(const DiGraph& dag,
                                   ForestStrategy strategy);
inline SpanningForest BuildSpanningForest(const DiGraph& dag) {
  return BuildSpanningForest(dag, ForestStrategy::kDfs);
}

}  // namespace gsr

#endif  // GSR_GRAPH_SPANNING_FOREST_H_
