#include "graph/scc.h"

#include <algorithm>

namespace gsr {

uint32_t SccDecomposition::LargestComponentSize() const {
  if (size_of.empty()) return 0;
  return *std::max_element(size_of.begin(), size_of.end());
}

SccDecomposition ComputeScc(const DiGraph& graph) {
  const VertexId n = graph.num_vertices();
  constexpr uint32_t kUndefined = 0xFFFFFFFFu;

  SccDecomposition out;
  out.component_of.assign(n, kUndefined);

  std::vector<uint32_t> index(n, kUndefined);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;

  // Explicit DFS call stack: (vertex, next out-edge position).
  struct Frame {
    VertexId v;
    uint32_t edge_pos;
  };
  std::vector<Frame> call;

  uint32_t next_index = 0;

  for (VertexId start = 0; start < n; ++start) {
    if (index[start] != kUndefined) continue;
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    call.push_back(Frame{start, 0});

    while (!call.empty()) {
      Frame& frame = call.back();
      const VertexId v = frame.v;
      const auto neighbors = graph.OutNeighbors(v);

      if (frame.edge_pos < neighbors.size()) {
        const VertexId w = neighbors[frame.edge_pos++];
        if (index[w] == kUndefined) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});  // Invalidates `frame`; loop restarts.
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }

      // All out-edges of v explored: close the frame.
      call.pop_back();
      if (!call.empty()) {
        const VertexId parent = call.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        // v roots a component: pop the Tarjan stack down to v.
        const ComponentId c = out.num_components++;
        uint32_t component_size = 0;
        VertexId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component_of[w] = c;
          ++component_size;
        } while (w != v);
        out.size_of.push_back(component_size);
      }
    }
  }
  return out;
}

DiGraph BuildCondensationGraph(const DiGraph& graph,
                               const SccDecomposition& scc) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const ComponentId cv = scc.component_of[v];
    for (const VertexId w : graph.OutNeighbors(v)) {
      const ComponentId cw = scc.component_of[w];
      if (cv != cw) edges.emplace_back(cv, cw);
    }
  }
  auto result = DiGraph::FromEdges(scc.num_components, std::move(edges));
  GSR_CHECK(result.ok());  // Component ids are dense by construction.
  return std::move(result).value();
}

ComponentMembers GroupByComponent(const SccDecomposition& scc) {
  ComponentMembers out;
  out.offsets.assign(scc.num_components + 1, 0);
  for (const ComponentId c : scc.component_of) out.offsets[c + 1]++;
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    out.offsets[c + 1] += out.offsets[c];
  }
  out.members.resize(scc.component_of.size());
  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (VertexId v = 0; v < scc.component_of.size(); ++v) {
    out.members[cursor[scc.component_of[v]]++] = v;
  }
  return out;
}

}  // namespace gsr
