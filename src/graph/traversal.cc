#include "graph/traversal.h"

#include <algorithm>

namespace gsr {

bool BfsTraversal::CanReach(VertexId from, VertexId to) {
  bool found = false;
  ForEachReachable(from, [&](VertexId v) {
    if (v == to) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<VertexId> BfsTraversal::CollectReachable(VertexId from) {
  std::vector<VertexId> out;
  ForEachReachable(from, [&out](VertexId v) {
    out.push_back(v);
    return true;
  });
  return out;
}

std::vector<VertexId> TopologicalOrder(const DiGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> in_degree(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    in_degree[v] = graph.InDegree(v);
    if (in_degree[v] == 0) order.push_back(v);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (const VertexId w : graph.OutNeighbors(order[head])) {
      if (--in_degree[w] == 0) order.push_back(w);
    }
  }
  if (order.size() != n) return {};  // Cycle detected.
  return order;
}

bool IsAcyclic(const DiGraph& graph) {
  return graph.num_vertices() == 0 || !TopologicalOrder(graph).empty();
}

}  // namespace gsr
