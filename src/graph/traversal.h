#ifndef GSR_GRAPH_TRAVERSAL_H_
#define GSR_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace gsr {

/// Reusable BFS machinery over a DiGraph. Keeps its visited marks as an
/// epoch-stamped array so repeated traversals touch only the frontier, not
/// an O(|V|) reset. This is the online-search baseline ("no offline cost,
/// O(|V|+|E|) per query") from Section 7.1 and the ground-truth oracle the
/// tests compare every index against.
class BfsTraversal {
 public:
  /// Binds to `graph`; the graph must outlive the traversal object.
  explicit BfsTraversal(const DiGraph* graph)
      : graph_(graph), mark_(graph->num_vertices(), 0) {}

  /// True iff `to` is reachable from `from` (a path of length >= 0, so a
  /// vertex always reaches itself).
  bool CanReach(VertexId from, VertexId to);

  /// Invokes `fn(v)` for every vertex reachable from `from` (including
  /// `from` itself) in BFS order until `fn` returns false. Returns true
  /// when stopped early.
  template <typename Fn>
  bool ForEachReachable(VertexId from, Fn&& fn) {
    BeginEpoch();
    queue_.clear();
    queue_.push_back(from);
    mark_[from] = epoch_;
    for (size_t head = 0; head < queue_.size(); ++head) {
      const VertexId v = queue_[head];
      if (!fn(v)) return true;
      for (const VertexId w : graph_->OutNeighbors(v)) {
        if (mark_[w] != epoch_) {
          mark_[w] = epoch_;
          queue_.push_back(w);
        }
      }
    }
    return false;
  }

  /// All vertices reachable from `from`, including `from`, in BFS order.
  std::vector<VertexId> CollectReachable(VertexId from);

 private:
  void BeginEpoch() {
    if (++epoch_ == 0) {
      // Epoch counter wrapped: reset all marks once.
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }

  const DiGraph* graph_;
  std::vector<uint32_t> mark_;
  std::vector<VertexId> queue_;
  uint32_t epoch_ = 0;
};

/// One topological order of a DAG (Kahn's algorithm). Returns an empty
/// vector when `graph` contains a cycle.
std::vector<VertexId> TopologicalOrder(const DiGraph& graph);

/// True when `graph` has no directed cycle.
bool IsAcyclic(const DiGraph& graph);

}  // namespace gsr

#endif  // GSR_GRAPH_TRAVERSAL_H_
