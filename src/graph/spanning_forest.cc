#include "graph/spanning_forest.h"

#include <algorithm>

#include "common/check.h"
#include "graph/traversal.h"

namespace gsr {

namespace {

/// One DFS from `root`, claiming unvisited vertices into the forest and
/// assigning post-order numbers through `next_post`.
void DfsFromRoot(const DiGraph& dag, VertexId root, SpanningForest& forest,
                 std::vector<bool>& visited, uint32_t& next_post) {
  struct Frame {
    VertexId v;
    uint32_t edge_pos;
  };
  std::vector<Frame> stack;
  visited[root] = true;
  stack.push_back(Frame{root, 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const VertexId v = frame.v;
    const auto neighbors = dag.OutNeighbors(v);

    if (frame.edge_pos < neighbors.size()) {
      const VertexId w = neighbors[frame.edge_pos++];
      if (!visited[w]) {
        visited[w] = true;
        forest.parent[w] = v;
        stack.push_back(Frame{w, 0});  // Invalidates `frame`.
      } else {
        forest.non_tree_edges.emplace_back(v, w);
      }
      continue;
    }

    // Post-visit: v finishes now.
    forest.post[v] = next_post;
    forest.vertex_of_post[next_post] = v;
    ++next_post;
    // index(v) = min post in subtree; children finished before v.
    uint32_t min_post = forest.post[v];
    for (const VertexId w : neighbors) {
      if (forest.parent[w] == v) {
        min_post = std::min(min_post, forest.min_post_subtree[w]);
      }
    }
    forest.min_post_subtree[v] = min_post;
    stack.pop_back();
  }
}

/// Multi-source BFS claiming parents, then an explicit post-order
/// traversal of the built forest to assign numbers.
void BuildBfsForest(const DiGraph& dag, SpanningForest& forest) {
  const VertexId n = dag.num_vertices();
  std::vector<bool> visited(n, false);

  // Claim parents level by level, one BFS per root (roots found in id
  // order; a later sweep catches non-DAG leftovers).
  std::vector<VertexId> queue;
  auto bfs_from = [&](VertexId root) {
    forest.roots.push_back(root);
    queue.clear();
    queue.push_back(root);
    visited[root] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (const VertexId w : dag.OutNeighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          forest.parent[w] = v;
          queue.push_back(w);
        } else {
          forest.non_tree_edges.emplace_back(v, w);
        }
      }
    }
  };
  for (VertexId v = 0; v < n; ++v) {
    if (dag.InDegree(v) == 0 && !visited[v]) bfs_from(v);
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!visited[v]) bfs_from(v);
  }

  // Children lists for the explicit post-order traversal.
  std::vector<std::vector<VertexId>> children(n);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] != kInvalidVertex) {
      children[forest.parent[v]].push_back(v);
    }
  }

  uint32_t next_post = 1;
  struct Frame {
    VertexId v;
    uint32_t child_pos;
  };
  std::vector<Frame> stack;
  for (const VertexId root : forest.roots) {
    stack.push_back(Frame{root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const VertexId v = frame.v;
      if (frame.child_pos < children[v].size()) {
        stack.push_back(Frame{children[v][frame.child_pos++], 0});
        continue;
      }
      forest.post[v] = next_post;
      forest.vertex_of_post[next_post] = v;
      ++next_post;
      uint32_t min_post = forest.post[v];
      for (const VertexId c : children[v]) {
        min_post = std::min(min_post, forest.min_post_subtree[c]);
      }
      forest.min_post_subtree[v] = min_post;
      stack.pop_back();
    }
  }
  GSR_CHECK(next_post == n + 1);
}

}  // namespace

const char* ForestStrategyName(ForestStrategy strategy) {
  return strategy == ForestStrategy::kDfs ? "dfs" : "bfs";
}

uint32_t SpanningForest::MaxDepth() const {
  // Within a tree, a parent's post is larger than all of its descendants',
  // so iterating posts descending sees parents before children.
  std::vector<uint32_t> depth(parent.size(), 0);
  uint32_t max_depth = 0;
  for (uint32_t p = static_cast<uint32_t>(parent.size()); p >= 1; --p) {
    const VertexId v = vertex_of_post[p];
    if (parent[v] != kInvalidVertex) {
      depth[v] = depth[parent[v]] + 1;
      max_depth = std::max(max_depth, depth[v]);
    }
  }
  return max_depth;
}

SpanningForest BuildSpanningForest(const DiGraph& dag,
                                   ForestStrategy strategy) {
  const VertexId n = dag.num_vertices();
  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  forest.post.assign(n, 0);
  forest.vertex_of_post.assign(static_cast<size_t>(n) + 1, kInvalidVertex);
  forest.min_post_subtree.assign(n, 0);

  if (strategy == ForestStrategy::kDfs) {
    std::vector<bool> visited(n, false);
    uint32_t next_post = 1;
    // Primary roots: vertices with only outgoing edges; then a safety
    // sweep for non-DAG inputs (a vertex on a source-cycle has no
    // zero-in-degree ancestor).
    for (VertexId v = 0; v < n; ++v) {
      if (dag.InDegree(v) == 0 && !visited[v]) {
        forest.roots.push_back(v);
        DfsFromRoot(dag, v, forest, visited, next_post);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!visited[v]) {
        forest.roots.push_back(v);
        DfsFromRoot(dag, v, forest, visited, next_post);
      }
    }
    GSR_CHECK(next_post == n + 1);

    // DFS invariant: post(u) < post(v) for every edge (v, u), so ascending
    // source post *is* reverse topological order (Algorithm 1, line 20).
    std::sort(forest.non_tree_edges.begin(), forest.non_tree_edges.end(),
              [&forest](const auto& a, const auto& b) {
                if (forest.post[a.first] != forest.post[b.first]) {
                  return forest.post[a.first] < forest.post[b.first];
                }
                return forest.post[a.second] < forest.post[b.second];
              });
    return forest;
  }

  // BFS forest: shallow trees, but the post-order numbers of the forest no
  // longer follow the DAG's edge direction, so the non-tree edges are
  // ordered by an explicit topological sort instead.
  BuildBfsForest(dag, forest);
  const std::vector<VertexId> topo = TopologicalOrder(dag);
  std::vector<uint32_t> topo_pos(n, 0);
  if (!topo.empty()) {
    for (uint32_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;
  } else {
    // Cyclic input (only possible through the safety sweep): fall back to
    // post order, which at least keeps the pass deterministic.
    for (VertexId v = 0; v < n; ++v) topo_pos[v] = forest.post[v];
  }
  std::sort(forest.non_tree_edges.begin(), forest.non_tree_edges.end(),
            [&topo_pos](const auto& a, const auto& b) {
              if (topo_pos[a.first] != topo_pos[b.first]) {
                return topo_pos[a.first] > topo_pos[b.first];  // Reverse.
              }
              return topo_pos[a.second] > topo_pos[b.second];
            });
  return forest;
}

void SerializeSpanningForest(const SpanningForest& forest, BinaryWriter& w) {
  w.WriteU32(static_cast<uint32_t>(forest.post.size()));
  w.WriteVector(forest.parent);
  w.WriteVector(forest.post);
  w.WriteVector(forest.vertex_of_post);
  w.WriteVector(forest.min_post_subtree);
  w.WriteVector(forest.roots);
}

Result<SpanningForest> DeserializeSpanningForest(BinaryReader& r) {
  uint32_t n = 0;
  GSR_RETURN_IF_ERROR(r.ReadU32(&n));
  SpanningForest forest;
  GSR_RETURN_IF_ERROR(r.ReadVector(&forest.parent));
  GSR_RETURN_IF_ERROR(r.ReadVector(&forest.post));
  GSR_RETURN_IF_ERROR(r.ReadVector(&forest.vertex_of_post));
  GSR_RETURN_IF_ERROR(r.ReadVector(&forest.min_post_subtree));
  GSR_RETURN_IF_ERROR(r.ReadVector(&forest.roots));
  if (forest.parent.size() != n || forest.post.size() != n ||
      forest.min_post_subtree.size() != n ||
      forest.vertex_of_post.size() != (n == 0 ? 0 : n + size_t{1}) ||
      forest.roots.size() > n) {
    return Status::InvalidArgument("spanning forest arrays disagree on size");
  }
  return forest;
}

}  // namespace gsr
