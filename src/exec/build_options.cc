#include "exec/build_options.h"

namespace gsr::exec {

ScopedBuildPool::ScopedBuildPool(const BuildOptions& options) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
    return;
  }
  const unsigned threads = options.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  if (threads > 1) {
    owned_.emplace(threads);
    pool_ = &*owned_;
  }
}

}  // namespace gsr::exec
