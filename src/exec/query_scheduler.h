#ifndef GSR_EXEC_QUERY_SCHEDULER_H_
#define GSR_EXEC_QUERY_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/range_reach.h"
#include "exec/batch_runner.h"
#include "exec/query_group.h"
#include "exec/thread_pool.h"

namespace gsr::exec {

/// Work-sharing query scheduler: sits between callers and a method's
/// Evaluate, reorders an admitted window of queries into shared-work
/// groups (see BuildGroups) and executes one group per pool task through
/// the method's EvaluateGroup hook.
///
/// Guarantees:
///  - Answers are bit-identical to evaluating every query serially with
///    Evaluate — grouping only changes *how often* shared work (labeling
///    probes, descendant scans, R-tree descents) runs, never an answer.
///    methods_agreement_test enforces this for all methods across thread
///    counts and forced kernel levels.
///  - Fairness: queries are admitted in windows of
///    GroupingOptions::window, so no query waits on more than one
///    window's worth of later arrivals.
///  - An exception thrown by one group does not poison the rest of the
///    batch: the remaining groups still execute, the first exception is
///    rethrown after the batch, and the scheduler stays usable for the
///    next Run.
///
/// Like BatchRunner, per-worker scratches are cached across Run() calls
/// for the same method (keyed by instance_id) and their counters drained
/// into the method aggregate after every batch.
class QueryScheduler {
 public:
  /// The pool must outlive the scheduler.
  explicit QueryScheduler(ThreadPool* pool) : pool_(pool) {}

  /// Groups and evaluates all queries; blocks until done. Rethrows the
  /// first exception any group threw (after all groups ran).
  BatchResult Run(const RangeReachMethod& method,
                  const std::vector<RangeReachQuery>& queries,
                  const SchedulerOptions& options = {});

  /// Number of per-worker scratches currently cached (test hook).
  size_t cached_scratch_count() const { return scratches_.size(); }

  /// Sharing achieved by the last Run (bench/test introspection).
  struct ShareStats {
    size_t groups = 0;            // Shared-work units executed.
    size_t queries = 0;           // Members across all groups.
    size_t distinct_regions = 0;  // Region slots after dedup.
  };
  const ShareStats& last_share_stats() const { return last_share_stats_; }

 private:
  ThreadPool* pool_;
  /// Scratch cache, one slot per pool worker, valid for the method whose
  /// instance_id() this holds (0 = empty); same keying as BatchRunner.
  uint64_t scratch_method_id_ = 0;
  std::vector<std::unique_ptr<QueryScratch>> scratches_;
  /// Grouping state reused across windows and Run() calls, so a
  /// steady-state dispatch allocates nothing (the open-loop serving
  /// shape: many small windows per second).
  GroupingArena arena_;
  ShareStats last_share_stats_;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_QUERY_SCHEDULER_H_
