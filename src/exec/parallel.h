#ifndef GSR_EXEC_PARALLEL_H_
#define GSR_EXEC_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <vector>

#include "exec/thread_pool.h"

namespace gsr::exec {

/// Runs fn(index) for every index in [0, n): inline when `pool` is null
/// (or trivial), on the pool's workers in contiguous chunks otherwise.
/// Both paths perform exactly the same set of calls, so any `fn` whose
/// writes are confined to its own index yields identical results at every
/// thread count. Blocks until all indices are done.
template <typename Fn>
void ForEachIndex(ThreadPool* pool, size_t n, size_t chunk, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, chunk, [&fn](size_t index, unsigned) { fn(index); });
}

/// Deterministic parallel sort: chunk-local std::sort followed by a
/// log-depth pairwise std::inplace_merge tree.
///
/// `comp` MUST be a strict total order over element *values* (distinct
/// elements never compare equivalent). Under that precondition the sorted
/// permutation is unique, so the result is bit-identical to a serial
/// std::sort regardless of chunking or thread count. With a mere weak
/// order the parallel and serial results could order equivalent elements
/// differently — callers wanting determinism must add tie-breakers.
template <typename It, typename Comp>
void ParallelSort(ThreadPool* pool, It begin, It end, Comp comp) {
  const size_t n = static_cast<size_t>(std::distance(begin, end));
  // Below this size the chunk/merge overhead outweighs any win.
  constexpr size_t kMinParallel = size_t{1} << 14;
  if (pool == nullptr || pool->size() <= 1 || n < kMinParallel) {
    std::sort(begin, end, comp);
    return;
  }

  // Power-of-two chunk count keeps the merge tree perfectly regular.
  size_t chunks = 1;
  while (chunks < 2 * static_cast<size_t>(pool->size())) chunks *= 2;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  pool->ParallelFor(chunks, 1, [&](size_t c, unsigned) {
    std::sort(begin + static_cast<ptrdiff_t>(bounds[c]),
              begin + static_cast<ptrdiff_t>(bounds[c + 1]), comp);
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t pairs = chunks / (2 * width);
    pool->ParallelFor(pairs, 1, [&](size_t p, unsigned) {
      const size_t lo = bounds[2 * width * p];
      const size_t mid = bounds[2 * width * p + width];
      const size_t hi = bounds[2 * width * p + 2 * width];
      std::inplace_merge(begin + static_cast<ptrdiff_t>(lo),
                         begin + static_cast<ptrdiff_t>(mid),
                         begin + static_cast<ptrdiff_t>(hi), comp);
    });
  }
}

}  // namespace gsr::exec

#endif  // GSR_EXEC_PARALLEL_H_
