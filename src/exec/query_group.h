#ifndef GSR_EXEC_QUERY_GROUP_H_
#define GSR_EXEC_QUERY_GROUP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/range_reach.h"

namespace gsr {
class GridHistogram;
}  // namespace gsr

namespace gsr::exec {

/// Knobs for turning an admitted window of queries into shared-work
/// groups (see QueryScheduler).
struct GroupingOptions {
  /// Queries admitted per scheduling window. Grouping only happens within
  /// one window, so this is also the fairness bound: no query is
  /// reordered past more than `window` later arrivals.
  size_t window = 4096;
  /// Maximum *distinct* regions per group; clamped to simd::kMaskWidth
  /// (64) so grouped kernels can carry one query per mask bit. Duplicate
  /// (vertex, region) queries collapse onto one slot and do not count
  /// against the cap.
  size_t max_group_regions = 64;
  /// Group queries that share a query vertex (axis (a): shared labeling /
  /// interval probes). When off, every query forms its own group — the
  /// degenerate scheduler that must behave exactly like BatchRunner.
  bool group_by_vertex = true;
  /// Order a vertex's regions by a coarse grid cell of their center
  /// before splitting into max_group_regions chunks (axis (b): spatially
  /// close regions land in the same group, so one shared R-tree descent
  /// prunes them together instead of fanning out across the tree).
  bool group_by_overlap = true;
  /// Cells per axis of the overlap bucketing grid.
  int grid_resolution = 64;
  /// Optional selectivity histogram whose bounds the overlap bucketing
  /// snaps to; nullptr derives bounds from the window's own regions.
  const GridHistogram* histogram = nullptr;
};

/// One shared-work unit: every member query has the same query vertex and
/// its region deduplicated into `regions` (<= max_group_regions entries).
/// member_query[i] is the window-relative index of member i and
/// member_region[i] the slot of its region, so the scheduler can scatter
/// the per-region answers back to per-query answer slots.
struct QueryGroup {
  VertexId vertex = 0;
  std::vector<Rect> regions;
  std::vector<uint32_t> member_query;
  std::vector<uint32_t> member_region;
};

/// Reusable allocation state for repeated grouping passes. A scheduler
/// dispatching many small windows (the open-loop serving shape) would
/// otherwise pay a fresh hash map, bucket vectors and per-group vectors
/// on every dispatch; the arena clears containers instead of freeing
/// them, so a steady-state Build touches no allocator at all. Not
/// thread-safe; the returned span is valid until the next Build.
class GroupingArena {
 public:
  /// Same deterministic partition as BuildGroups (below), into storage
  /// owned by the arena.
  std::span<const QueryGroup> Build(std::span<const RangeReachQuery> window,
                                    const GroupingOptions& options);

 private:
  /// Claims the next group slot, reusing its member vectors' capacity.
  QueryGroup& NewGroup();

  /// One cell of the open-addressed vertex -> bucket table. Generation
  /// stamping makes emptying the table O(1) per Build (a stamp bump, no
  /// clear): a cell is live only when its gen matches the current one.
  struct VertexSlot {
    VertexId vertex = 0;
    uint32_t bucket = 0;
    uint32_t gen = 0;
  };
  std::vector<VertexSlot> slots_;  // Power-of-two, linear probing.
  uint32_t slot_gen_ = 0;
  std::vector<std::vector<uint32_t>> buckets_;  // First buckets_used_ live.
  size_t buckets_used_ = 0;
  std::vector<std::pair<uint32_t, uint32_t>> ordered_;  // (cell, index)
  std::vector<QueryGroup> groups_;  // First groups_used_ live.
  size_t groups_used_ = 0;
};

/// Partitions `window` into shared-work groups, deterministically:
/// vertices in first-appearance order, one vertex's groups in bucketed
/// region order, duplicates collapsed. Every query appears in exactly one
/// group. Group execution order does not affect answers (groups write
/// disjoint slots), so the partition is safe to run in parallel.
/// Convenience wrapper over a one-shot GroupingArena; repeated callers
/// (the scheduler) hold an arena instead.
std::vector<QueryGroup> BuildGroups(std::span<const RangeReachQuery> window,
                                    const GroupingOptions& options);

/// Scheduler knobs: the grouping policy plus result options.
struct SchedulerOptions {
  GroupingOptions grouping;
  /// What every query of the batch computes (see BatchOptions::kind).
  /// Count/enum windows group exactly like boolean ones — the shared
  /// probes and descents are the same — but execute through the
  /// methods' CollectGroupInto hook into per-region-slot sinks.
  QueryKind kind = QueryKind::kBool;
  /// When set, BatchResult::latencies_us gets one entry per query: the
  /// wall time of the query's whole *group* on its worker — all members
  /// of a group complete together, so that is each member's service time
  /// under sharing.
  bool record_latencies = false;
  /// Windows smaller than this skip grouping and run one query per pool
  /// task, exactly like BatchRunner::Run. A small window has little to
  /// share — on skewed streams duplicate density grows with window
  /// size — but would still pay the hash-and-sort grouping pass and the
  /// per-group dispatch overhead; under an open-loop arrival process
  /// that fixed cost is pure added latency whenever the backlog is
  /// small. The default is sized to the *fastest* method (sub-µs 3DReach
  /// probes), whose grouping breakeven sits near a thousand queries:
  /// below it the per-query path runs at parity with BatchRunner::Run,
  /// and real backlogs — a scheduling stall at any method's sustainable
  /// offered rate backlogs queries in proportion to that rate, so slow
  /// methods only ever see large backlogs alongside large absolute
  /// sharing wins — still group and drain faster than per-query
  /// execution can. 0 means always group.
  size_t min_window_to_group = 1024;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_QUERY_GROUP_H_
