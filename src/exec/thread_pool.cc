#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace gsr::exec {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned worker = 0; worker < n; ++worker) {
    workers_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void(unsigned)> task) {
  Task item;
  item.fn = std::move(task);
  std::future<void> done = item.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return done;
}

void ThreadPool::ParallelFor(
    size_t n, size_t chunk,
    const std::function<void(size_t index, unsigned worker)>& fn) {
  if (n == 0) return;
  const size_t step = std::max<size_t>(1, chunk);

  // One long-lived task per worker; each repeatedly claims the next
  // contiguous chunk off a shared cursor until the range is exhausted.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> done;
  done.reserve(workers_.size());
  for (unsigned t = 0; t < workers_.size(); ++t) {
    done.push_back(Submit([cursor, n, step, &fn](unsigned worker) {
      for (;;) {
        const size_t begin = cursor->fetch_add(step);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + step);
        for (size_t i = begin; i < end; ++i) fn(i, worker);
      }
    }));
  }
  // Wait for everything first so `fn` and `cursor` stay alive for all
  // workers even when one of them throws; then surface the first error.
  for (std::future<void>& f : done) f.wait();
  for (std::future<void>& f : done) f.get();
}

unsigned ThreadPool::DefaultThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop(unsigned worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task.fn(worker);
      task.done.set_value();
    } catch (...) {
      task.done.set_exception(std::current_exception());
    }
  }
}

}  // namespace gsr::exec
