#include "exec/query_group.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/simd.h"
#include "spatial/grid_histogram.h"

namespace gsr::exec {

namespace {

/// Row-major cell id of the region's center on a `resolution` x
/// `resolution` grid over `bounds`. Centers outside the bounds clamp to
/// the border cells, so arbitrary regions always bucket somewhere.
uint32_t CellOf(const Rect& region, const Rect& bounds, int resolution) {
  const Point2D center = region.Center();
  const double w = bounds.Width();
  const double h = bounds.Height();
  const double fx = w > 0.0 ? (center.x - bounds.min_x) / w : 0.0;
  const double fy = h > 0.0 ? (center.y - bounds.min_y) / h : 0.0;
  const int max_cell = resolution - 1;
  const int ix = std::clamp(static_cast<int>(fx * resolution), 0, max_cell);
  const int iy = std::clamp(static_cast<int>(fy * resolution), 0, max_cell);
  return static_cast<uint32_t>(iy) * static_cast<uint32_t>(resolution) +
         static_cast<uint32_t>(ix);
}

}  // namespace

QueryGroup& GroupingArena::NewGroup() {
  if (groups_used_ == groups_.size()) groups_.emplace_back();
  QueryGroup& group = groups_[groups_used_++];
  group.regions.clear();
  group.member_query.clear();
  group.member_region.clear();
  return group;
}

std::span<const QueryGroup> GroupingArena::Build(
    std::span<const RangeReachQuery> window, const GroupingOptions& options) {
  groups_used_ = 0;
  buckets_used_ = 0;
  if (window.empty()) return {};
  const size_t cap =
      std::clamp<size_t>(options.max_group_regions, 1, simd::kMaskWidth);

  if (!options.group_by_vertex) {
    // Degenerate policy: one singleton group per query, arrival order.
    for (size_t i = 0; i < window.size(); ++i) {
      QueryGroup& group = NewGroup();
      group.vertex = window[i].vertex;
      group.regions.push_back(window[i].region);
      group.member_query.push_back(static_cast<uint32_t>(i));
      group.member_region.push_back(0);
    }
    return std::span<const QueryGroup>(groups_.data(), groups_used_);
  }

  // Axis (a): bucket the window's query indices by query vertex, keeping
  // vertices in first-appearance order so the partition is deterministic.
  // The vertex table is open-addressed at <= 50% load (this pass is the
  // grouping hot spot — a node-based map here costs more than the probes
  // some groups share).
  const size_t min_slots = std::bit_ceil(window.size() * 2);
  if (slots_.size() < min_slots) {
    slots_.assign(min_slots, VertexSlot{});
    slot_gen_ = 0;
  }
  if (++slot_gen_ == 0) {  // Stamp wrap: one real clear every 2^32 builds.
    std::fill(slots_.begin(), slots_.end(), VertexSlot{});
    slot_gen_ = 1;
  }
  const size_t slot_mask = slots_.size() - 1;
  const int hash_shift =
      64 - std::countr_zero(static_cast<uint64_t>(slots_.size()));
  for (size_t i = 0; i < window.size(); ++i) {
    const VertexId vertex = window[i].vertex;
    size_t s = (static_cast<uint64_t>(vertex) * 0x9E3779B97F4A7C15ull) >>
               hash_shift;
    uint32_t bucket;
    while (true) {
      VertexSlot& slot = slots_[s];
      if (slot.gen != slot_gen_) {
        bucket = static_cast<uint32_t>(buckets_used_);
        slot = VertexSlot{vertex, bucket, slot_gen_};
        if (buckets_used_ == buckets_.size()) buckets_.emplace_back();
        buckets_[buckets_used_++].clear();
        break;
      }
      if (slot.vertex == vertex) {
        bucket = slot.bucket;
        break;
      }
      s = (s + 1) & slot_mask;
    }
    buckets_[bucket].push_back(static_cast<uint32_t>(i));
  }

  // Axis (b): the bounds the spatial bucketing snaps to — the workload
  // histogram when the caller has one, else the union of this window's
  // region centers.
  const bool by_overlap =
      options.group_by_overlap && options.grid_resolution >= 2;
  Rect bounds;
  if (by_overlap) {
    if (options.histogram != nullptr) {
      bounds = options.histogram->bounds();
    } else {
      for (const RangeReachQuery& query : window) {
        bounds.Expand(query.region.Center());
      }
    }
  }

  for (size_t b = 0; b < buckets_used_; ++b) {
    const std::vector<uint32_t>& bucket = buckets_[b];
    // Order the vertex's members so spatially close regions are adjacent
    // before the <= cap split; stable sort keeps arrival order within a
    // cell, so the partition stays deterministic.
    ordered_.clear();
    ordered_.reserve(bucket.size());
    for (const uint32_t index : bucket) {
      const uint32_t cell =
          by_overlap
              ? CellOf(window[index].region, bounds, options.grid_resolution)
              : 0;
      ordered_.emplace_back(cell, index);
    }
    if (by_overlap) {
      std::stable_sort(ordered_.begin(), ordered_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
    }

    QueryGroup* group = nullptr;
    for (const auto& [cell, index] : ordered_) {
      const Rect& region = window[index].region;
      // Exact-duplicate regions collapse onto one slot: the region list
      // is at most `cap` long, so the linear scan is bounded.
      uint32_t slot = 0;
      if (group != nullptr) {
        while (slot < group->regions.size() &&
               !(group->regions[slot] == region)) {
          ++slot;
        }
      }
      if (group == nullptr ||
          (slot == group->regions.size() && group->regions.size() == cap)) {
        group = &NewGroup();
        group->vertex = window[index].vertex;
        slot = 0;
      }
      if (slot == group->regions.size()) group->regions.push_back(region);
      group->member_query.push_back(index);
      group->member_region.push_back(slot);
    }
  }
  return std::span<const QueryGroup>(groups_.data(), groups_used_);
}

std::vector<QueryGroup> BuildGroups(std::span<const RangeReachQuery> window,
                                    const GroupingOptions& options) {
  GroupingArena arena;
  const std::span<const QueryGroup> groups = arena.Build(window, options);
  return std::vector<QueryGroup>(groups.begin(), groups.end());
}

}  // namespace gsr::exec
