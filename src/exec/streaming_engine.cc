#include "exec/streaming_engine.h"

#include <utility>

#include "common/check.h"

namespace gsr::exec {

StreamingRangeReach::StreamingRangeReach(GeoSocialNetwork network,
                                         ThreadPool* pool,
                                         StreamingOptions options)
    : options_(std::move(options)),
      pool_(pool),
      engine_(std::move(network), pool) {
  if (options_.publish_every == 0) options_.publish_every = 1;
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();
}

StreamingRangeReach::~StreamingRangeReach() { WaitForRebuilds(); }

void StreamingRangeReach::PublishLocked() {
  slot_.Publish(std::make_shared<const EpochView>(engine_.Snapshot(),
                                                  slot_.epoch() + 1));
  unpublished_ = 0;
  ++stats_.publishes;
}

Result<VertexId> StreamingRangeReach::Apply(const Update& update) {
  RebuildCapture capture;
  Result<VertexId> id = kInvalidVertex;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t before = engine_.log_size();
    id = engine_.Apply(update);
    if (!id.ok()) return id;
    if (engine_.log_size() == before) {
      ++stats_.noop_updates;
      return id;  // No state change, nothing to publish.
    }
    ++stats_.updates;
    if (++unpublished_ >= options_.publish_every) PublishLocked();
    capture = MaybeStartRebuildLocked();
  }
  if (capture.inline_run) {
    RunRebuild(std::move(capture.old_base), std::move(capture.suffix),
               capture.cut, /*parallel=*/false);
  }
  return id;
}

Status StreamingRangeReach::ApplyAll(std::span<const Update> updates) {
  for (const Update& update : updates) {
    auto id = Apply(update);
    if (!id.ok()) return id.status();
  }
  return Status::Ok();
}

void StreamingRangeReach::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();
}

StreamingRangeReach::RebuildCapture
StreamingRangeReach::MaybeStartRebuildLocked() {
  RebuildCapture capture;
  if (options_.rebuild_threshold == 0 || rebuild_inflight_) return capture;
  if (engine_.pending_updates() < options_.rebuild_threshold) return capture;

  rebuild_inflight_ = true;
  ++stats_.rebuilds_started;
  capture.cut = engine_.log_size();
  capture.old_base = engine_.base();
  capture.suffix = engine_.CopyLog(capture.old_base->position, capture.cut);

  if (pool_ == nullptr) {
    // Synchronous engine: the caller runs the rebuild inline once the
    // lock is released (RunRebuild re-acquires it to install).
    capture.inline_run = true;
    return capture;
  }
  // The future is dropped on purpose: completion is signalled through
  // rebuild_inflight_/rebuild_cv_, and RunRebuild never throws.
  (void)pool_->Submit([this, old_base = std::move(capture.old_base),
                       suffix = std::move(capture.suffix),
                       cut = capture.cut](unsigned) mutable {
    // Serial base build: pool tasks must not re-enter ParallelFor.
    RunRebuild(std::move(old_base), std::move(suffix), cut,
               /*parallel=*/false);
  });
  return capture;
}

void StreamingRangeReach::RunRebuild(
    std::shared_ptr<const DynamicRangeReach::Base> old_base,
    std::vector<Update> suffix, uint64_t cut, bool parallel) {
  // Off-lock: materialize the network at the cut and build the fresh
  // base. Readers keep pinning and querying, the writer keeps applying —
  // everything past `cut` stays in the delta after installation.
  auto merged = MaterializeNetwork(*old_base->network, suffix);
  GSR_CHECK(merged.ok());
  auto built = DynamicRangeReach::Base::Build(std::move(merged).value(), cut,
                                              parallel ? pool_ : nullptr);

  Status spill_error;
  bool from_snapshot = false;
  if (!options_.spill_dir.empty()) {
    const std::string path =
        options_.spill_dir + "/base_" + std::to_string(cut) + ".gsr";
    auto swapped = DynamicRangeReach::Base::RoundTripThroughSnapshot(
        built, path, options_.spill_mode);
    if (swapped.ok()) {
      built = std::move(swapped).value();
      from_snapshot = true;
    } else {
      // Fall back to the directly built base: the swap is an optimization,
      // never a correctness requirement.
      spill_error = swapped.status();
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  engine_.InstallBase(std::move(built));
  PublishLocked();
  ++stats_.rebuilds_completed;
  if (from_snapshot) ++stats_.snapshot_swaps;
  if (!spill_error.ok()) {
    ++stats_.rebuild_failures;
    last_rebuild_error_ = spill_error;
  }
  rebuild_inflight_ = false;
  rebuild_cv_.notify_all();
}

void StreamingRangeReach::Flush() {
  WaitForRebuilds();
  std::unique_lock<std::mutex> lock(mu_);
  if (engine_.pending_updates() == 0 &&
      engine_.log_size() == engine_.base()->position) {
    PublishLocked();
    return;
  }
  rebuild_inflight_ = true;
  ++stats_.rebuilds_started;
  const uint64_t cut = engine_.log_size();
  auto old_base = engine_.base();
  auto suffix = engine_.CopyLog(old_base->position, cut);
  lock.unlock();
  // Inline, but off-lock like the background path (readers stay live);
  // the writer is this caller, so nothing races the cut.
  RunRebuild(std::move(old_base), std::move(suffix), cut, /*parallel=*/true);
}

std::shared_ptr<const EpochView> StreamingRangeReach::Pin() const {
  auto pinned = slot_.Pin();
  GSR_CHECK(pinned.state != nullptr);  // Epoch 1 is published in the ctor.
  return pinned.state;
}

void StreamingRangeReach::WaitForRebuilds() {
  std::unique_lock<std::mutex> lock(mu_);
  rebuild_cv_.wait(lock, [this] { return !rebuild_inflight_; });
}

uint64_t StreamingRangeReach::log_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.log_size();
}

size_t StreamingRangeReach::pending_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.pending_updates();
}

VertexId StreamingRangeReach::num_vertices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.num_vertices();
}

StreamingRangeReach::Stats StreamingRangeReach::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status StreamingRangeReach::last_rebuild_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_rebuild_error_;
}

std::vector<Update> StreamingRangeReach::CopyLog(uint64_t from,
                                                 uint64_t to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.CopyLog(from, to);
}

Result<GeoSocialNetwork> StreamingRangeReach::MaterializeView(
    const EpochView& view) const {
  const auto& base = *view.view().base;
  auto suffix = CopyLog(base.position, view.position());
  return MaterializeNetwork(*base.network, suffix);
}

}  // namespace gsr::exec
