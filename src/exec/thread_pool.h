#ifndef GSR_EXEC_THREAD_POOL_H_
#define GSR_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gsr::exec {

/// A fixed pool of worker threads consuming a FIFO task queue. Tasks
/// receive the id of the worker running them (0 .. size()-1), which is how
/// BatchRunner routes per-thread query scratch without any locking on the
/// hot path. Deliberately no work stealing: batches are sharded into
/// chunks via a single atomic cursor (see ParallelFor), which balances
/// load without per-task queue traffic.
///
/// Threads are spawned once in the constructor and live until destruction,
/// so scratch state keyed by worker id stays meaningful across
/// submissions.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned num_threads);

  /// Finishes queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one task. The returned future resolves when the task
  /// finishes and rethrows anything it threw.
  std::future<void> Submit(std::function<void(unsigned worker)> task);

  /// Runs fn(index, worker) for every index in [0, n). Indices are dealt
  /// to workers in contiguous chunks of `chunk` (>= 1) claimed from an
  /// atomic cursor, so faster workers naturally take more chunks. Blocks
  /// until every index is done; rethrows the first task exception (the
  /// remaining workers still drain their chunks first). Must not be
  /// called from inside a pool task — the caller's wait would deadlock
  /// on a single-thread pool.
  void ParallelFor(
      size_t n, size_t chunk,
      const std::function<void(size_t index, unsigned worker)>& fn);

  /// std::thread::hardware_concurrency() with a fallback of 1.
  static unsigned DefaultThreads();

 private:
  struct Task {
    std::function<void(unsigned)> fn;
    std::promise<void> done;
  };

  void WorkerLoop(unsigned worker);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_THREAD_POOL_H_
