#include "exec/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <span>

#include "common/check.h"
#include "common/simd.h"

namespace gsr::exec {

BatchResult QueryScheduler::Run(const RangeReachMethod& method,
                                const std::vector<RangeReachQuery>& queries,
                                const SchedulerOptions& options) {
  if (scratch_method_id_ != method.instance_id()) {
    scratches_.clear();
    scratches_.reserve(pool_->size());
    for (unsigned i = 0; i < pool_->size(); ++i) {
      scratches_.push_back(method.NewScratch());
    }
    scratch_method_id_ = method.instance_id();
  }

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  if (options.record_latencies) {
    result.latencies_us.assign(queries.size(), 0.0);
  }
  last_share_stats_ = ShareStats{};

  const size_t window = std::max<size_t>(1, options.grouping.window);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (size_t start = 0; start < queries.size(); start += window) {
    const size_t count = std::min(window, queries.size() - start);

    if (count < options.min_window_to_group) {
      // A window this small has (almost) nothing to share; skip the
      // grouping pass and run one query per pool task, exactly like
      // BatchRunner::Run. Under open-loop serving this is the common
      // dispatch shape whenever the backlog is small, and the grouping
      // pass would be pure added latency there; a real backlog exceeds
      // the threshold and gets grouped as usual.
      last_share_stats_.groups += count;
      last_share_stats_.queries += count;
      last_share_stats_.distinct_regions += count;
      // Match BatchRunner::Run's per-query cost exactly: same claim
      // chunk, and no clock read unless latencies were asked for — at
      // sub-microsecond methods a steady_clock call per query is
      // measurable drag on a backlog drain.
      pool_->ParallelFor(count, BatchOptions{}.chunk, [&](size_t i,
                                                          unsigned worker) {
        const RangeReachQuery& query = queries[start + i];
        std::chrono::steady_clock::time_point begin;
        if (options.record_latencies) begin = std::chrono::steady_clock::now();
        bool answer = false;
        try {
          answer = method.Evaluate(query.vertex, query.region,
                                   *scratches_[worker]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
        result.answers[start + i] = answer ? 1 : 0;
        if (options.record_latencies) {
          result.latencies_us[start + i] =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - begin)
                  .count();
        }
      });
      continue;
    }

    const std::span<const QueryGroup> groups = arena_.Build(
        std::span<const RangeReachQuery>(queries.data() + start, count),
        options.grouping);
    for (const QueryGroup& group : groups) {
      ++last_share_stats_.groups;
      last_share_stats_.queries += group.member_query.size();
      last_share_stats_.distinct_regions += group.regions.size();
    }

    pool_->ParallelFor(groups.size(), 1, [&](size_t g, unsigned worker) {
      const QueryGroup& group = groups[g];
      // BuildGroups clamps groups to the kernel mask width, so a stack
      // answer buffer suffices.
      GSR_CHECK(group.regions.size() <= simd::kMaskWidth);
      bool answers[simd::kMaskWidth];
      // Clock reads only when asked: a low-dedup window degenerates into
      // hundreds of singleton groups, and a steady_clock call per group
      // is real overhead against sub-microsecond evaluations.
      std::chrono::steady_clock::time_point begin;
      if (options.record_latencies) begin = std::chrono::steady_clock::now();
      try {
        method.EvaluateGroup(
            group.vertex, std::span<const Rect>(group.regions),
            std::span<bool>(answers, group.regions.size()),
            *scratches_[worker]);
      } catch (...) {
        // Swallow here so this worker keeps draining its remaining
        // groups (ParallelFor would otherwise abandon them); the first
        // exception is rethrown after the batch.
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
      double micros = 0.0;
      if (options.record_latencies) {
        micros = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - begin)
                     .count();
      }
      for (size_t m = 0; m < group.member_query.size(); ++m) {
        const size_t slot = start + group.member_query[m];
        result.answers[slot] = answers[group.member_region[m]] ? 1 : 0;
        if (options.record_latencies) result.latencies_us[slot] = micros;
      }
    });
  }

  // Pool idle: drain per-worker counters into the method aggregate, even
  // on the error path (the scratches are still healthy).
  for (const std::unique_ptr<QueryScratch>& scratch : scratches_) {
    method.DrainScratchCounters(*scratch);
  }
  if (first_error) std::rethrow_exception(first_error);

  for (const uint8_t answer : result.answers) result.true_count += answer;
  return result;
}

}  // namespace gsr::exec
