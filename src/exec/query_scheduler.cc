#include "exec/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <span>

#include "common/check.h"
#include "common/simd.h"

namespace gsr::exec {

BatchResult QueryScheduler::Run(const RangeReachMethod& method,
                                const std::vector<RangeReachQuery>& queries,
                                const SchedulerOptions& options) {
  if (scratch_method_id_ != method.instance_id()) {
    scratches_.clear();
    scratches_.reserve(pool_->size());
    for (unsigned i = 0; i < pool_->size(); ++i) {
      scratches_.push_back(method.NewScratch());
    }
    scratch_method_id_ = method.instance_id();
  }

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  if (options.kind != QueryKind::kBool) {
    result.counts.assign(queries.size(), 0);
    if (options.kind == QueryKind::kEnum) {
      result.enums.assign(queries.size(), {});
    }
  }
  if (options.record_latencies) {
    result.latencies_us.assign(queries.size(), 0.0);
  }
  last_share_stats_ = ShareStats{};

  const size_t window = std::max<size_t>(1, options.grouping.window);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (size_t start = 0; start < queries.size(); start += window) {
    const size_t count = std::min(window, queries.size() - start);

    if (count < options.min_window_to_group) {
      // A window this small has (almost) nothing to share; skip the
      // grouping pass and run one query per pool task, exactly like
      // BatchRunner::Run. Under open-loop serving this is the common
      // dispatch shape whenever the backlog is small, and the grouping
      // pass would be pure added latency there; a real backlog exceeds
      // the threshold and gets grouped as usual.
      last_share_stats_.groups += count;
      last_share_stats_.queries += count;
      last_share_stats_.distinct_regions += count;
      // Match BatchRunner::Run's per-query cost exactly: same claim
      // chunk, and no clock read unless latencies were asked for — at
      // sub-microsecond methods a steady_clock call per query is
      // measurable drag on a backlog drain.
      pool_->ParallelFor(count, BatchOptions{}.chunk, [&](size_t i,
                                                          unsigned worker) {
        const RangeReachQuery& query = queries[start + i];
        std::chrono::steady_clock::time_point begin;
        if (options.record_latencies) begin = std::chrono::steady_clock::now();
        try {
          switch (options.kind) {
            case QueryKind::kBool:
              result.answers[start + i] =
                  method.Evaluate(query.vertex, query.region,
                                  *scratches_[worker])
                      ? 1
                      : 0;
              break;
            case QueryKind::kCount: {
              ResultSink sink = ResultSink::Count();
              method.CollectInto(query.vertex, query.region, sink,
                                 *scratches_[worker]);
              result.counts[start + i] = sink.count();
              result.answers[start + i] = sink.found() ? 1 : 0;
              break;
            }
            case QueryKind::kEnum: {
              ResultSink sink = ResultSink::Enum(&result.enums[start + i]);
              method.CollectInto(query.vertex, query.region, sink,
                                 *scratches_[worker]);
              sink.Finalize();
              result.counts[start + i] = sink.count();
              result.answers[start + i] = sink.found() ? 1 : 0;
              break;
            }
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
        if (options.record_latencies) {
          result.latencies_us[start + i] =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - begin)
                  .count();
        }
      });
      continue;
    }

    const std::span<const QueryGroup> groups = arena_.Build(
        std::span<const RangeReachQuery>(queries.data() + start, count),
        options.grouping);
    for (const QueryGroup& group : groups) {
      ++last_share_stats_.groups;
      last_share_stats_.queries += group.member_query.size();
      last_share_stats_.distinct_regions += group.regions.size();
    }

    pool_->ParallelFor(groups.size(), 1, [&](size_t g, unsigned worker) {
      const QueryGroup& group = groups[g];
      // BuildGroups clamps groups to the kernel mask width, so stack
      // answer/sink buffers suffice.
      GSR_CHECK(group.regions.size() <= simd::kMaskWidth);
      const size_t slots = group.regions.size();
      bool answers[simd::kMaskWidth];
      ResultSink sinks[simd::kMaskWidth];
      // Per-region-slot enum arenas; duplicate queries of a slot copy
      // from it when the answers scatter. Sized only for enum groups.
      std::vector<std::vector<VertexId>> slot_vertices;
      // Clock reads only when asked: a low-dedup window degenerates into
      // hundreds of singleton groups, and a steady_clock call per group
      // is real overhead against sub-microsecond evaluations.
      std::chrono::steady_clock::time_point begin;
      if (options.record_latencies) begin = std::chrono::steady_clock::now();
      try {
        switch (options.kind) {
          case QueryKind::kBool:
            method.EvaluateGroup(group.vertex,
                                 std::span<const Rect>(group.regions),
                                 std::span<bool>(answers, slots),
                                 *scratches_[worker]);
            break;
          case QueryKind::kCount:
            for (size_t k = 0; k < slots; ++k) sinks[k] = ResultSink::Count();
            method.CollectGroupInto(group.vertex,
                                    std::span<const Rect>(group.regions),
                                    std::span<ResultSink>(sinks, slots),
                                    *scratches_[worker]);
            break;
          case QueryKind::kEnum:
            slot_vertices.resize(slots);
            for (size_t k = 0; k < slots; ++k) {
              sinks[k] = ResultSink::Enum(&slot_vertices[k]);
            }
            method.CollectGroupInto(group.vertex,
                                    std::span<const Rect>(group.regions),
                                    std::span<ResultSink>(sinks, slots),
                                    *scratches_[worker]);
            for (size_t k = 0; k < slots; ++k) sinks[k].Finalize();
            break;
        }
      } catch (...) {
        // Swallow here so this worker keeps draining its remaining
        // groups (ParallelFor would otherwise abandon them); the first
        // exception is rethrown after the batch.
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
      double micros = 0.0;
      if (options.record_latencies) {
        micros = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - begin)
                     .count();
      }
      for (size_t m = 0; m < group.member_query.size(); ++m) {
        const size_t slot = start + group.member_query[m];
        const uint32_t r = group.member_region[m];
        if (options.kind == QueryKind::kBool) {
          result.answers[slot] = answers[r] ? 1 : 0;
        } else {
          result.counts[slot] = sinks[r].count();
          result.answers[slot] = sinks[r].found() ? 1 : 0;
          if (options.kind == QueryKind::kEnum) {
            result.enums[slot] = slot_vertices[r];
          }
        }
        if (options.record_latencies) result.latencies_us[slot] = micros;
      }
    });
  }

  // Pool idle: drain per-worker counters into the method aggregate, even
  // on the error path (the scratches are still healthy).
  for (const std::unique_ptr<QueryScratch>& scratch : scratches_) {
    method.DrainScratchCounters(*scratch);
  }
  if (first_error) std::rethrow_exception(first_error);

  for (const uint8_t answer : result.answers) result.true_count += answer;
  return result;
}

}  // namespace gsr::exec
