#ifndef GSR_EXEC_STREAMING_ENGINE_H_
#define GSR_EXEC_STREAMING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/dynamic_range_reach.h"
#include "exec/epoch.h"
#include "exec/thread_pool.h"

namespace gsr::exec {

/// Policy knobs of the streaming engine.
struct StreamingOptions {
  /// Publish a fresh epoch after this many applied (state-changing)
  /// updates. 1 = every update is immediately visible to new pins;
  /// larger values batch-publish (readers keep answering against the
  /// previous epoch in between).
  size_t publish_every = 1;
  /// Kick off a background base rebuild once the pending delta reaches
  /// this size. 0 disables background rebuilds (delta grows until an
  /// explicit Flush()).
  size_t rebuild_threshold = 4096;
  /// When non-empty, rebuilt bases are hot-swapped *through the snapshot
  /// layer*: the fresh index is saved to `<spill_dir>/base_<pos>.gsr` and
  /// reloaded with `spill_mode` before installation, so what readers
  /// switch to is the snapshot-backed image (kMmap = zero-copy views into
  /// the file). Empty installs the directly built base.
  std::string spill_dir;
  snapshot::LoadMode spill_mode = snapshot::LoadMode::kMmap;
};

/// A pinned epoch of the streaming engine, wrapped as a RangeReachMethod:
/// BatchRunner / QueryScheduler / result-sink pipelines run against it
/// like any other method while the engine keeps ingesting and swapping
/// bases underneath. The full query surface is served — boolean through
/// Evaluate, count/enum sinks through the view's CollectInto.
///
/// The view inside is immutable, so one EpochView serves any number of
/// concurrent reader threads — one Scratch each, per the usual contract.
class EpochView : public RangeReachMethod {
 public:
  EpochView(std::shared_ptr<const DynamicRangeReach::View> view,
            uint64_t epoch)
      : view_(std::move(view)), epoch_(epoch) {}

  struct Scratch : QueryScratch {
    DynamicRangeReach::Scratch inner;
  };

  std::unique_ptr<QueryScratch> NewScratch() const override {
    return std::make_unique<Scratch>();
  }

  bool Evaluate(VertexId vertex, const Rect& region,
                QueryScratch& scratch) const override {
    return view_->Evaluate(vertex, region,
                           static_cast<Scratch&>(scratch).inner);
  }

  void CollectInto(VertexId vertex, const Rect& region, ResultSink& sink,
                   QueryScratch& scratch) const override {
    view_->CollectInto(vertex, region, sink,
                       static_cast<Scratch&>(scratch).inner);
  }

  using RangeReachMethod::Evaluate;

  std::string name() const override {
    return "DynamicRangeReach@e" + std::to_string(epoch_);
  }

  size_t IndexSizeBytes() const override { return view_->SizeBytes(); }

  const DynamicRangeReach::View& view() const { return *view_; }
  uint64_t epoch() const { return epoch_; }
  /// The log position this epoch reflects.
  uint64_t position() const { return view_->position; }
  VertexId num_vertices() const { return view_->num_vertices(); }

 private:
  std::shared_ptr<const DynamicRangeReach::View> view_;
  uint64_t epoch_ = 0;
};

/// The streaming-update engine: a DynamicRangeReach behind an epoch slot.
///
/// Single writer, many readers. Writers stream updates through Apply();
/// each applied update lands in the log and (per publish_every) a fresh
/// immutable view is published as the next epoch. Readers call Pin() and
/// query the returned EpochView for as long as they like — pinned epochs
/// survive any number of publishes and base swaps, and are freed by
/// refcount when the last reader drops them.
///
/// When the pending delta reaches rebuild_threshold, the writer path
/// schedules a *background* rebuild on the ThreadPool: the task captures
/// (current base, log suffix copy, cut position) under the lock, then —
/// off-lock, while updates and queries keep flowing — materializes the
/// network at the cut, builds a fresh 3DReach base (serially: pool tasks
/// must not re-enter ParallelFor), optionally round-trips it through the
/// snapshot layer (StreamingOptions::spill_dir), and finally installs it
/// under the lock and publishes the next epoch. Queries racing the swap
/// see either the old (base, delta) or the new one; both answer
/// bit-identically, which tests enforce against a rebuilt-from-scratch
/// oracle under TSan.
class StreamingRangeReach {
 public:
  /// Counters, all monotonic, read via stats().
  struct Stats {
    uint64_t updates = 0;           // State-changing updates applied.
    uint64_t noop_updates = 0;      // Applied but no state change.
    uint64_t publishes = 0;         // Epochs published.
    uint64_t rebuilds_started = 0;  // Background rebuilds kicked off.
    uint64_t rebuilds_completed = 0;
    uint64_t rebuild_failures = 0;  // Snapshot spill fell back to built base.
    uint64_t snapshot_swaps = 0;    // Bases installed from a snapshot image.
  };

  /// Builds the initial base over `network` and publishes epoch 1.
  /// `pool` runs the background rebuilds (and parallelizes the initial
  /// build); pass nullptr for a fully synchronous engine (rebuilds then
  /// run inline on the writer thread).
  StreamingRangeReach(GeoSocialNetwork network, ThreadPool* pool,
                      StreamingOptions options = {});

  /// Waits for any in-flight rebuild, then tears down.
  ~StreamingRangeReach();

  StreamingRangeReach(const StreamingRangeReach&) = delete;
  StreamingRangeReach& operator=(const StreamingRangeReach&) = delete;

  // --- Writer API (serialize externally or call from one thread).

  /// Applies one update; returns the new vertex id for kAddVertex,
  /// kInvalidVertex otherwise. Publishes / schedules rebuilds per the
  /// options.
  Result<VertexId> Apply(const Update& update);

  /// Applies a whole stream in order; stops at the first invalid update.
  Status ApplyAll(std::span<const Update> updates);

  /// Publishes the current state as a fresh epoch even if publish_every
  /// has not been reached.
  void Publish();

  /// Synchronously folds every pending update into a fresh base (through
  /// the snapshot layer when configured) and publishes. Waits for any
  /// in-flight background rebuild first.
  void Flush();

  // --- Reader API (any thread, any time).

  /// Pins the current epoch. The returned view answers every query
  /// bit-identically to a from-scratch rebuild at its log position,
  /// forever — later updates land in later epochs.
  std::shared_ptr<const EpochView> Pin() const;

  /// Blocks until no rebuild is in flight (the epoch the rebuild
  /// publishes is then pinnable).
  void WaitForRebuilds();

  // --- Introspection.

  uint64_t current_epoch() const { return slot_.epoch(); }
  size_t alive_epochs() const { return slot_.alive_epochs(); }
  uint64_t log_size() const;
  size_t pending_updates() const;
  VertexId num_vertices() const;
  Stats stats() const;
  /// Status of the last failed snapshot spill (Ok when none failed).
  Status last_rebuild_error() const;

  /// Copies log entries [from, to) — the oracle hook: materialize a
  /// pinned view's network as initial snapshot + log prefix and compare.
  std::vector<Update> CopyLog(uint64_t from, uint64_t to) const;

  /// Materializes the exact network a pinned view reflects (rebuilt from
  /// the view's own base + the log range up to its position). Tests build
  /// a NaiveBFS oracle over this.
  Result<GeoSocialNetwork> MaterializeView(const EpochView& view) const;

 private:
  /// Capture of a rebuild decided under the lock; when the engine has no
  /// pool, the caller runs it inline after releasing the lock (RunRebuild
  /// re-acquires it to install).
  struct RebuildCapture {
    std::shared_ptr<const DynamicRangeReach::Base> old_base;
    std::vector<Update> suffix;
    uint64_t cut = 0;
    bool inline_run = false;
  };

  void PublishLocked();
  RebuildCapture MaybeStartRebuildLocked();
  /// The body of a rebuild: build a base folding log [0, cut), spill it
  /// through the snapshot layer when configured, install + publish.
  void RunRebuild(std::shared_ptr<const DynamicRangeReach::Base> old_base,
                  std::vector<Update> suffix, uint64_t cut, bool parallel);

  StreamingOptions options_;
  ThreadPool* pool_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable rebuild_cv_;
  DynamicRangeReach engine_;
  size_t unpublished_ = 0;
  bool rebuild_inflight_ = false;
  Stats stats_;
  Status last_rebuild_error_;

  EpochSlot<EpochView> slot_;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_STREAMING_ENGINE_H_
