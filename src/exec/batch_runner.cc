#include "exec/batch_runner.h"

#include <chrono>

#include "exec/query_scheduler.h"

namespace gsr::exec {

BatchRunner::BatchRunner(ThreadPool* pool) : pool_(pool) {}
BatchRunner::~BatchRunner() = default;

void BatchRunner::EnsureScratches(const RangeReachMethod& method) {
  if (scratch_method_id_ == method.instance_id()) return;
  scratches_.clear();
  scratches_.reserve(pool_->size());
  for (unsigned i = 0; i < pool_->size(); ++i) {
    scratches_.push_back(method.NewScratch());
  }
  scratch_method_id_ = method.instance_id();
}

BatchResult BatchRunner::Run(const RangeReachMethod& method,
                             const std::vector<RangeReachQuery>& queries,
                             const BatchOptions& options) {
  EnsureScratches(method);

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  if (options.kind != QueryKind::kBool) {
    result.counts.assign(queries.size(), 0);
    if (options.kind == QueryKind::kEnum) {
      result.enums.assign(queries.size(), {});
    }
  }
  if (options.record_latencies) {
    result.latencies_us.assign(queries.size(), 0.0);
  }

  // One evaluation, kind-dispatched; workers write disjoint slots of the
  // result arrays, so no synchronization is needed.
  auto eval_one = [&](size_t i, QueryScratch& scratch) {
    const RangeReachQuery& query = queries[i];
    switch (options.kind) {
      case QueryKind::kBool:
        result.answers[i] =
            method.Evaluate(query.vertex, query.region, scratch) ? 1 : 0;
        break;
      case QueryKind::kCount: {
        ResultSink sink = ResultSink::Count();
        method.CollectInto(query.vertex, query.region, sink, scratch);
        result.counts[i] = sink.count();
        result.answers[i] = sink.found() ? 1 : 0;
        break;
      }
      case QueryKind::kEnum: {
        ResultSink sink = ResultSink::Enum(&result.enums[i]);
        method.CollectInto(query.vertex, query.region, sink, scratch);
        sink.Finalize();
        result.counts[i] = sink.count();
        result.answers[i] = sink.found() ? 1 : 0;
        break;
      }
    }
  };

  pool_->ParallelFor(
      queries.size(), options.chunk,
      [&](size_t i, unsigned worker) {
        QueryScratch& scratch = *scratches_[worker];
        if (options.record_latencies) {
          const auto start = std::chrono::steady_clock::now();
          eval_one(i, scratch);
          const auto stop = std::chrono::steady_clock::now();
          result.latencies_us[i] =
              std::chrono::duration<double, std::micro>(stop - start).count();
        } else {
          eval_one(i, scratch);
        }
      });

  // Fold per-worker counters into the method aggregate on this thread;
  // the pool is idle now, so no query races with the drain.
  for (const std::unique_ptr<QueryScratch>& scratch : scratches_) {
    method.DrainScratchCounters(*scratch);
  }

  for (const uint8_t answer : result.answers) result.true_count += answer;
  return result;
}

BatchResult BatchRunner::RunAny(const RangeReachMethod& method,
                                const std::vector<AnyReachQuery>& queries,
                                const BatchOptions& options) {
  EnsureScratches(method);

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  if (options.record_latencies) {
    result.latencies_us.assign(queries.size(), 0.0);
  }

  pool_->ParallelFor(
      queries.size(), options.chunk,
      [&](size_t i, unsigned worker) {
        const AnyReachQuery& query = queries[i];
        QueryScratch& scratch = *scratches_[worker];
        if (options.record_latencies) {
          const auto start = std::chrono::steady_clock::now();
          result.answers[i] =
              method.EvaluateAny(query.sources, query.region, scratch) ? 1 : 0;
          const auto stop = std::chrono::steady_clock::now();
          result.latencies_us[i] =
              std::chrono::duration<double, std::micro>(stop - start).count();
        } else {
          result.answers[i] =
              method.EvaluateAny(query.sources, query.region, scratch) ? 1 : 0;
        }
      });

  for (const std::unique_ptr<QueryScratch>& scratch : scratches_) {
    method.DrainScratchCounters(*scratch);
  }

  for (const uint8_t answer : result.answers) result.true_count += answer;
  return result;
}

BatchResult BatchRunner::RunShared(const RangeReachMethod& method,
                                   const std::vector<RangeReachQuery>& queries,
                                   const SchedulerOptions& options) {
  if (!scheduler_) scheduler_ = std::make_unique<QueryScheduler>(pool_);
  return scheduler_->Run(method, queries, options);
}

size_t BatchRunner::cached_scratch_count() const { return scratches_.size(); }

}  // namespace gsr::exec
