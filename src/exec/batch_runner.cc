#include "exec/batch_runner.h"

#include <chrono>

#include "exec/query_scheduler.h"

namespace gsr::exec {

BatchRunner::BatchRunner(ThreadPool* pool) : pool_(pool) {}
BatchRunner::~BatchRunner() = default;

BatchResult BatchRunner::Run(const RangeReachMethod& method,
                             const std::vector<RangeReachQuery>& queries,
                             const BatchOptions& options) {
  if (scratch_method_id_ != method.instance_id()) {
    scratches_.clear();
    scratches_.reserve(pool_->size());
    for (unsigned i = 0; i < pool_->size(); ++i) {
      scratches_.push_back(method.NewScratch());
    }
    scratch_method_id_ = method.instance_id();
  }

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  if (options.record_latencies) {
    result.latencies_us.assign(queries.size(), 0.0);
  }

  pool_->ParallelFor(
      queries.size(), options.chunk,
      [&](size_t i, unsigned worker) {
        const RangeReachQuery& query = queries[i];
        QueryScratch& scratch = *scratches_[worker];
        if (options.record_latencies) {
          const auto start = std::chrono::steady_clock::now();
          result.answers[i] =
              method.Evaluate(query.vertex, query.region, scratch) ? 1 : 0;
          const auto stop = std::chrono::steady_clock::now();
          result.latencies_us[i] =
              std::chrono::duration<double, std::micro>(stop - start).count();
        } else {
          result.answers[i] =
              method.Evaluate(query.vertex, query.region, scratch) ? 1 : 0;
        }
      });

  // Fold per-worker counters into the method aggregate on this thread;
  // the pool is idle now, so no query races with the drain.
  for (const std::unique_ptr<QueryScratch>& scratch : scratches_) {
    method.DrainScratchCounters(*scratch);
  }

  for (const uint8_t answer : result.answers) result.true_count += answer;
  return result;
}

BatchResult BatchRunner::RunShared(const RangeReachMethod& method,
                                   const std::vector<RangeReachQuery>& queries,
                                   const SchedulerOptions& options) {
  if (!scheduler_) scheduler_ = std::make_unique<QueryScheduler>(pool_);
  return scheduler_->Run(method, queries, options);
}

size_t BatchRunner::cached_scratch_count() const { return scratches_.size(); }

}  // namespace gsr::exec
