#ifndef GSR_EXEC_BUILD_OPTIONS_H_
#define GSR_EXEC_BUILD_OPTIONS_H_

#include <optional>

#include "exec/thread_pool.h"

namespace gsr::exec {

/// How an index build distributes its work. Threaded through MethodFactory
/// and CondensedNetwork into every index constructor, so one worker set
/// drives the whole pipeline: STR R-tree packing, interval-labeling
/// construction, and GeoReach SPA-graph propagation.
///
/// Every parallel build stage in the codebase is *deterministic*: it
/// produces bit-identical indexes and stats at any thread count (see
/// DESIGN.md, "Index construction pipeline").
struct BuildOptions {
  /// Worker threads for construction. 1 = serial (the default, and the
  /// exact seed behaviour); 0 = one worker per hardware thread.
  unsigned num_threads = 1;

  /// Optional externally owned pool. When set it overrides num_threads;
  /// it must outlive the build but is not retained afterwards.
  ThreadPool* pool = nullptr;
};

/// Resolves BuildOptions into the ThreadPool* used for one build: borrows
/// options.pool when given, spawns a private pool when num_threads asks
/// for parallelism, and stays null (= serial everywhere) otherwise.
class ScopedBuildPool {
 public:
  explicit ScopedBuildPool(const BuildOptions& options);

  /// Null means "run serial".
  ThreadPool* get() const { return pool_; }

 private:
  std::optional<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_BUILD_OPTIONS_H_
