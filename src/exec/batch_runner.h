#ifndef GSR_EXEC_BATCH_RUNNER_H_
#define GSR_EXEC_BATCH_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/range_reach.h"
#include "exec/query_group.h"
#include "exec/thread_pool.h"

namespace gsr::exec {

class QueryScheduler;

/// Tuning knobs for one batch evaluation.
struct BatchOptions {
  /// Queries per chunk claimed from the shared cursor. Large enough to
  /// amortize the atomic increment, small enough to balance skewed
  /// per-query costs (a BFS miss can be 1000x a label-lookup hit).
  size_t chunk = 32;
  /// When set, BatchResult::latencies_us gets one entry per query
  /// (steady-clock wall time of that query on its worker).
  bool record_latencies = false;
  /// What every query of the batch computes: boolean RangeReach (the
  /// default, the paper's Problem 1), RangeReachCount, or RangeReachEnum.
  /// Count/enum batches run the methods' collection paths and fill
  /// BatchResult::counts / ::enums alongside the answers.
  QueryKind kind = QueryKind::kBool;
};

/// Answers for one batch.
struct BatchResult {
  /// answers[i] == 1 iff queries[i] is TRUE (for count/enum kinds: iff
  /// the result set is non-empty). uint8_t (not vector<bool>) so
  /// concurrent writes to distinct indices are race-free.
  std::vector<uint8_t> answers;
  /// Number of TRUE answers (== sum of answers).
  size_t true_count = 0;
  /// counts[i] == |result set of queries[i]|; filled for kCount and
  /// kEnum batches, empty for kBool.
  std::vector<uint64_t> counts;
  /// enums[i] == the result vertices of queries[i] in canonical
  /// (ascending) order; filled for kEnum batches only.
  std::vector<std::vector<VertexId>> enums;
  /// Per-query latencies in microseconds, parallel to answers; empty
  /// unless BatchOptions::record_latencies.
  std::vector<double> latencies_us;
};

/// Evaluates batches of RangeReach queries on a thread pool.
///
/// Each pool worker gets its own QueryScratch (created via
/// method.NewScratch()), so any RangeReachMethod honoring the scratch
/// contract of core/range_reach.h can be driven from all workers at once.
/// After every batch the per-worker scratch counters are folded into the
/// method's aggregate counters on the calling thread, so
/// method.counters() reflects batch work exactly as if it ran serially.
///
/// Scratches are cached across Run() calls for the same method (index
/// buffers stay warm); switching methods re-creates them.
class BatchRunner {
 public:
  /// The pool must outlive the runner. Constructor and destructor are
  /// out of line: QueryScheduler is an incomplete type here.
  explicit BatchRunner(ThreadPool* pool);
  ~BatchRunner();

  /// Evaluates all queries; blocks until the batch is done. Rethrows the
  /// first exception any query evaluation threw.
  BatchResult Run(const RangeReachMethod& method,
                  const std::vector<RangeReachQuery>& queries,
                  const BatchOptions& options = {});

  /// Evaluates all queries through the work-sharing QueryScheduler:
  /// queries sharing a query vertex (and, within a vertex, spatially
  /// close regions) execute as one group via the method's EvaluateGroup
  /// hook. Answers are bit-identical to Run; shared probes/descents make
  /// it faster on skewed streams. The scheduler (and its scratch cache)
  /// persists across calls, like Run's.
  BatchResult RunShared(const RangeReachMethod& method,
                        const std::vector<RangeReachQuery>& queries,
                        const SchedulerOptions& options = {});

  /// Evaluates a batch of multi-source AnyReach queries (one per pool
  /// task, through the method's EvaluateAny hook — k-way batched probes
  /// where the method has them). Only answers/true_count are produced;
  /// BatchOptions::kind is ignored.
  BatchResult RunAny(const RangeReachMethod& method,
                     const std::vector<AnyReachQuery>& queries,
                     const BatchOptions& options = {});

  /// The scheduler behind RunShared (sharing stats); nullptr until the
  /// first RunShared call.
  const QueryScheduler* scheduler() const { return scheduler_.get(); }

  /// Number of per-worker scratches currently cached (test hook).
  size_t cached_scratch_count() const;

 private:
  /// (Re)fills the per-worker scratch cache for `method`.
  void EnsureScratches(const RangeReachMethod& method);

  ThreadPool* pool_;
  /// Scratch cache, one slot per pool worker, valid for the method whose
  /// instance_id() this holds (0 = empty). Keyed by id, not address: a
  /// destroyed method's address can be reoccupied by a new instance whose
  /// scratch layout differs.
  uint64_t scratch_method_id_ = 0;
  std::vector<std::unique_ptr<QueryScratch>> scratches_;
  /// Lazily created by RunShared (incomplete type here; the destructor
  /// is out of line for the same reason).
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_BATCH_RUNNER_H_
