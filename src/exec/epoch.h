#ifndef GSR_EXEC_EPOCH_H_
#define GSR_EXEC_EPOCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace gsr::exec {

/// Epoch-based publication of immutable state, the read-while-update
/// backbone of the streaming engine. The protocol:
///
///   - *publish*: a writer swaps in a new immutable state object; the
///     epoch counter advances. Publication is atomic — a reader sees
///     either the old state or the new one, never a mix.
///   - *pin*: a reader grabs the current (state, epoch) pair. The state
///     is a shared_ptr to an immutable object, so a pinned epoch stays
///     fully valid however long the reader holds it — queries keep
///     running against it across any number of later publishes.
///   - *retire*: automatic. When the last pin of a superseded epoch
///     drops, the shared_ptr refcount frees it. No grace periods, no
///     deferred reclamation lists to drain.
///
/// The shared_ptr control block *is* the epoch bookkeeping: publication
/// is one mutex-guarded pointer swap (readers take the same mutex for a
/// copy — nanoseconds, never held across queries), retirement is the
/// refcount hitting zero. EpochManager tracks superseded epochs with
/// weak_ptrs purely for observability (alive_epochs() in stats/tests).
class EpochManager {
 public:
  /// Publishes `state` as the next epoch; returns its epoch number
  /// (starting at 1; 0 means "nothing published yet").
  uint64_t Publish(std::shared_ptr<const void> state) {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_) retired_.push_back(current_);
    current_ = std::move(state);
    CompactRetiredLocked();
    return ++epoch_;
  }

  /// The current (state, epoch) pair; state is null before first publish.
  std::pair<std::shared_ptr<const void>, uint64_t> Pin() const {
    std::lock_guard<std::mutex> lock(mu_);
    ++pins_;
    return {current_, epoch_};
  }

  /// The current epoch number (0 before first publish).
  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  /// Superseded epochs whose state is still alive (pinned by readers or
  /// an in-flight rebuild). Excludes the current epoch.
  size_t alive_epochs() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t alive = 0;
    for (const auto& weak : retired_) {
      if (!weak.expired()) ++alive;
    }
    return alive;
  }

  /// Total Pin() calls (observability).
  uint64_t pins() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pins_;
  }

 private:
  void CompactRetiredLocked() {
    std::erase_if(retired_,
                  [](const std::weak_ptr<const void>& w) { return w.expired(); });
  }

  mutable std::mutex mu_;
  std::shared_ptr<const void> current_;
  uint64_t epoch_ = 0;
  mutable uint64_t pins_ = 0;
  std::vector<std::weak_ptr<const void>> retired_;
};

/// Typed wrapper over EpochManager: Publish/Pin a `shared_ptr<const T>`
/// instead of void. This is the slot the streaming engine publishes
/// DynamicRangeReach views through.
template <typename T>
class EpochSlot {
 public:
  /// A pinned epoch: the immutable state plus its epoch number. Valid
  /// for as long as the holder keeps it, regardless of later publishes.
  struct Pinned {
    std::shared_ptr<const T> state;
    uint64_t epoch = 0;
  };

  uint64_t Publish(std::shared_ptr<const T> state) {
    return manager_.Publish(std::shared_ptr<const void>(std::move(state)));
  }

  Pinned Pin() const {
    auto [state, epoch] = manager_.Pin();
    return Pinned{std::static_pointer_cast<const T>(std::move(state)), epoch};
  }

  uint64_t epoch() const { return manager_.epoch(); }
  size_t alive_epochs() const { return manager_.alive_epochs(); }
  uint64_t pins() const { return manager_.pins(); }

 private:
  EpochManager manager_;
};

}  // namespace gsr::exec

#endif  // GSR_EXEC_EPOCH_H_
