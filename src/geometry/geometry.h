#ifndef GSR_GEOMETRY_GEOMETRY_H_
#define GSR_GEOMETRY_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace gsr {

/// A point in the two-dimensional space the geosocial network lives in.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D&, const Point2D&) = default;
};

/// A point in the 3-D transformation space of 3DReach (x, y, post).
struct Point3D {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Point3D&, const Point3D&) = default;
};

/// An axis-aligned rectangle [min_x,max_x] x [min_y,max_y].
///
/// The default-constructed Rect is *empty* (inverted bounds): it contains
/// nothing, intersects nothing, and Expand() of a first point makes it that
/// point. This is the MBR accumulator idiom used across the library.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// Creates the empty rectangle.
  Rect() = default;

  Rect(double min_x_in, double min_y_in, double max_x_in, double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  /// A zero-area rectangle covering exactly `p`.
  static Rect FromPoint(const Point2D& p) { return Rect(p.x, p.y, p.x, p.y); }

  /// True when the rectangle contains no points (inverted bounds).
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// True when point `p` lies inside (boundary inclusive).
  ///
  /// The scalar predicates below short-circuit deliberately: the
  /// first-hit descent (FrozenRTree::AnyIntersecting) and the member
  /// verification loops test mostly-missing candidates, and a miss
  /// resolving on the first compare beats evaluating all of them
  /// (measured ~2x on 3DReach throughput). The branchless formulations
  /// live in the SIMD mask kernels (src/common/simd.h), which test
  /// whole batches where per-lane short-circuiting is meaningless.
  bool Contains(const Point2D& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// True when `other` lies fully inside this rectangle.
  bool Contains(const Rect& other) const {
    if (other.IsEmpty()) return true;
    return other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  /// True when the two rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }

  /// Grows the rectangle to cover `p`.
  void Expand(const Point2D& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows the rectangle to cover `other`.
  void Expand(const Rect& other) {
    if (other.IsEmpty()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }

  Point2D Center() const {
    return Point2D{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  std::string ToString() const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// An axis-aligned box in the 3-D space used by the 3DReach transformation:
/// the first two dimensions are spatial, the third is the post-order-number
/// domain of the interval labeling.
struct Box3D {
  double min[3] = {std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()};
  double max[3] = {-std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()};

  /// Creates the empty box.
  Box3D() = default;

  Box3D(double min_x, double min_y, double min_z, double max_x, double max_y,
        double max_z) {
    min[0] = min_x;
    min[1] = min_y;
    min[2] = min_z;
    max[0] = max_x;
    max[1] = max_y;
    max[2] = max_z;
  }

  /// The cuboid R x [lo, hi] used by 3DReach queries.
  static Box3D FromRectAndInterval(const Rect& r, double lo, double hi) {
    return Box3D(r.min_x, r.min_y, lo, r.max_x, r.max_y, hi);
  }

  /// A zero-volume box at (x, y, z): a 3-D point entry.
  static Box3D FromPoint(double x, double y, double z) {
    return Box3D(x, y, z, x, y, z);
  }

  /// A vertical line segment at (x, y) spanning [z_lo, z_hi]: the entry
  /// shape used by 3DReach-REV.
  static Box3D VerticalSegment(double x, double y, double z_lo, double z_hi) {
    return Box3D(x, y, z_lo, x, y, z_hi);
  }

  bool IsEmpty() const {
    return min[0] > max[0] || min[1] > max[1] || min[2] > max[2];
  }

  bool Intersects(const Box3D& o) const {
    return min[0] <= o.max[0] && o.min[0] <= max[0] && min[1] <= o.max[1] &&
           o.min[1] <= max[1] && min[2] <= o.max[2] && o.min[2] <= max[2];
  }

  bool Contains(const Box3D& o) const {
    if (o.IsEmpty()) return true;
    return o.min[0] >= min[0] && o.max[0] <= max[0] && o.min[1] >= min[1] &&
           o.max[1] <= max[1] && o.min[2] >= min[2] && o.max[2] <= max[2];
  }

  void Expand(const Box3D& o) {
    if (o.IsEmpty()) return;
    for (int d = 0; d < 3; ++d) {
      min[d] = std::min(min[d], o.min[d]);
      max[d] = std::max(max[d], o.max[d]);
    }
  }

  double Volume() const {
    if (IsEmpty()) return 0.0;
    return (max[0] - min[0]) * (max[1] - min[1]) * (max[2] - min[2]);
  }

  std::string ToString() const;

  friend bool operator==(const Box3D&, const Box3D&) = default;
};

}  // namespace gsr

#endif  // GSR_GEOMETRY_GEOMETRY_H_
