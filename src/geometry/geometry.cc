#include "geometry/geometry.h"

#include <cstdio>

namespace gsr {

std::string Rect::ToString() const {
  if (IsEmpty()) return "Rect(empty)";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Rect([%g, %g] x [%g, %g])", min_x, max_x,
                min_y, max_y);
  return buf;
}

std::string Box3D::ToString() const {
  if (IsEmpty()) return "Box3D(empty)";
  char buf[192];
  std::snprintf(buf, sizeof(buf), "Box3D([%g, %g] x [%g, %g] x [%g, %g])",
                min[0], max[0], min[1], max[1], min[2], max[2]);
  return buf;
}

}  // namespace gsr
