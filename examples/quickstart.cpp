// Quickstart: build a small geosocial network by hand, index it with the
// paper's 3DReach method and answer RangeReach queries.
//
//   RangeReach(G, v, R) is TRUE iff vertex v can reach, through the
//   directed edges of G, some vertex whose point lies inside region R.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <optional>
#include <vector>

#include "core/condensed_network.h"
#include "core/geosocial_network.h"
#include "core/naive_bfs.h"
#include "core/three_d_reach.h"
#include "graph/digraph.h"

int main() {
  using namespace gsr;  // NOLINT

  // 1. Assemble the graph: users 0-2 (alice, bob, carol), venues 3-5.
  //    alice -> bob -> cafe(3); bob -> museum(4); carol -> park(5).
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // alice follows bob
  builder.AddEdge(1, 3);  // bob checked in at the cafe
  builder.AddEdge(1, 4);  // bob checked in at the museum
  builder.AddEdge(2, 5);  // carol checked in at the park
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // 2. Attach coordinates to the venues (users stay non-spatial).
  std::vector<std::optional<Point2D>> points(6);
  points[3] = Point2D{2.0, 2.0};  // cafe, downtown
  points[4] = Point2D{2.5, 1.5};  // museum, downtown
  points[5] = Point2D{9.0, 9.0};  // park, uptown
  auto network = GeoSocialNetwork::Create(std::move(graph).value(), points);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    return 1;
  }

  // 3. Build the index: SCC condensation once, then 3DReach on top.
  const CondensedNetwork cn(&*network);
  const ThreeDReach index(&cn);
  std::printf("indexed %u vertices, %llu edges, %llu venues (%zu bytes)\n",
              network->num_vertices(),
              static_cast<unsigned long long>(network->num_edges()),
              static_cast<unsigned long long>(network->num_spatial_vertices()),
              index.IndexSizeBytes());

  // 4. Ask questions.
  const Rect downtown(0.0, 0.0, 4.0, 4.0);
  const Rect uptown(8.0, 8.0, 10.0, 10.0);
  const char* names[] = {"alice", "bob", "carol"};
  for (VertexId user = 0; user < 3; ++user) {
    std::printf("%s reaches downtown: %s, uptown: %s\n", names[user],
                index.Evaluate(user, downtown) ? "yes" : "no",
                index.Evaluate(user, uptown) ? "yes" : "no");
  }

  // 5. Richer questions on the same index: RangeReachCount/Enum project
  //    the full result set, and AnyReach asks over several sources at
  //    once — "does anyone alice or carol follows reach uptown?"
  const std::vector<VertexId> friends = {0, 2};  // alice and carol
  std::printf("alice's downtown venues: %llu (enum:",
              static_cast<unsigned long long>(index.EvaluateCount(0,
                                                                  downtown)));
  for (const VertexId venue : index.EvaluateEnum(0, downtown)) {
    std::printf(" #%u", venue);
  }
  std::printf(")\n");
  std::printf("any of {alice, carol} reaches uptown: %s\n",
              index.EvaluateAny(friends, uptown) ? "yes" : "no");

  // 6. Sanity: the index-free oracle agrees.
  const NaiveBfsMethod oracle(&*network);
  for (VertexId user = 0; user < 3; ++user) {
    if (index.Evaluate(user, downtown) != oracle.Evaluate(user, downtown)) {
      std::fprintf(stderr, "index disagrees with BFS oracle!\n");
      return 1;
    }
  }
  std::printf("3DReach agrees with the BFS oracle on every query.\n");
  return 0;
}
