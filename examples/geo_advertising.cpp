// Geo-advertising (the paper's second motivating application): pick the
// best location for a new shop or event by measuring, for each candidate
// area, how many high-influence users have direct or indirect activity
// there. Each (user, area) pair is one RangeReach query; the candidate
// reachable by the most influencers wins.
//
// Run:  ./build/examples/geo_advertising

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/condensed_network.h"
#include "core/three_d_reach.h"
#include "datagen/generator.h"
#include "datagen/workload.h"

int main() {
  using namespace gsr;  // NOLINT

  GeneratorConfig config;
  config.name = "ads-city";
  config.num_users = 8000;
  config.num_venues = 15000;
  config.num_friendships = 60000;
  config.num_checkins = 90000;
  config.core_fraction = 0.5;
  config.space_extent = 50.0;
  config.seed = 7;
  const GeoSocialNetwork network = GenerateGeoSocialNetwork(config);
  const CondensedNetwork cn(&network);
  const ThreeDReach index(&cn);

  // Influencers: the users with the highest out-degree (most follows and
  // check-ins radiating outwards).
  std::vector<VertexId> influencers;
  for (VertexId v = 0; v < config.num_users; ++v) {
    if (network.graph().OutDegree(v) >= 100) influencers.push_back(v);
  }
  std::printf("found %zu influencers (out-degree >= 100)\n",
              influencers.size());

  // Candidate locations: a 5x5 grid of equally sized areas over the city.
  struct Candidate {
    Rect area;
    uint64_t reach = 0;
  };
  std::vector<Candidate> candidates;
  const Rect space = network.SpaceBounds();
  const double cell_w = space.Width() / 5.0;
  const double cell_h = space.Height() / 5.0;
  for (int ix = 0; ix < 5; ++ix) {
    for (int iy = 0; iy < 5; ++iy) {
      const double x0 = space.min_x + ix * cell_w;
      const double y0 = space.min_y + iy * cell_h;
      candidates.push_back({Rect(x0, y0, x0 + cell_w, y0 + cell_h), 0});
    }
  }

  // Score every candidate by the number of influencers that geosocially
  // reach it. An explicit scratch keeps this hot loop off the method-owned
  // default scratch the convenience overload shares.
  const std::unique_ptr<QueryScratch> scratch = index.NewScratch();
  for (Candidate& candidate : candidates) {
    for (const VertexId influencer : influencers) {
      if (index.Evaluate(influencer, candidate.area, *scratch)) {
        ++candidate.reach;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.reach > b.reach;
            });

  // The most-followed influencer anchors a depth metric for the ranking:
  // RangeReachCount gives the number of distinct venues their circle
  // touches in each winning area — "reached" areas are not all equal.
  VertexId top_influencer = influencers.empty() ? 0 : influencers.front();
  for (const VertexId v : influencers) {
    if (network.graph().OutDegree(v) >
        network.graph().OutDegree(top_influencer)) {
      top_influencer = v;
    }
  }

  std::printf("top 5 advertising locations (of %zu candidates):\n",
              candidates.size());
  for (size_t i = 0; i < 5 && i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const uint64_t depth =
        index.EvaluateCount(top_influencer, c.area, *scratch);
    std::printf("  %zu. area [%.1f,%.1f]x[%.1f,%.1f]  reached by %llu/%zu "
                "influencers; top influencer touches %llu venues there\n",
                i + 1, c.area.min_x, c.area.max_x, c.area.min_y, c.area.max_y,
                static_cast<unsigned long long>(c.reach), influencers.size(),
                static_cast<unsigned long long>(depth));
  }
  const uint64_t queries =
      static_cast<uint64_t>(candidates.size()) * influencers.size();
  std::printf("answered %llu RangeReach queries over a %zu-byte index\n",
              static_cast<unsigned long long>(queries),
              index.IndexSizeBytes());
  return 0;
}
