// Points-of-Interest recommendation (the paper's first motivating
// application): "are there restaurants in this part of the city that my
// friends, or friends of my friends, have visited?" RangeReachEnum
// answers with the venues themselves — one reachability pass per
// district, instead of the one-boolean-probe-per-venue loop an app would
// otherwise write. We then compare the paper's 3DReach against the
// SpaReach-BFL baseline on the same boolean workload and report the
// answers and the speedup.
//
// Run:  ./build/examples/poi_recommendation

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/condensed_network.h"
#include "core/spa_reach.h"
#include "core/three_d_reach.h"
#include "datagen/generator.h"

int main() {
  using namespace gsr;  // NOLINT

  // A mid-sized city: 4k users, 10k venues clustered around 12 hot spots.
  GeneratorConfig config;
  config.name = "poi-city";
  config.num_users = 4000;
  config.num_venues = 10000;
  config.num_friendships = 30000;
  config.num_checkins = 60000;
  config.core_fraction = 0.6;
  config.num_clusters = 12;
  config.space_extent = 100.0;  // 100 x 100 city grid.
  config.seed = 2025;
  const GeoSocialNetwork network = GenerateGeoSocialNetwork(config);
  std::printf("city network: %u vertices, %llu edges, %llu venues\n",
              network.num_vertices(),
              static_cast<unsigned long long>(network.num_edges()),
              static_cast<unsigned long long>(network.num_spatial_vertices()));

  const CondensedNetwork cn(&network);
  const ThreeDReach threed(&cn);
  const SpaReachBfl spareach(&cn);

  // Four named districts of the city.
  struct District {
    const char* name;
    Rect area;
  };
  const std::vector<District> districts = {
      {"old town", Rect(10, 10, 30, 30)},
      {"harbor", Rect(70, 5, 95, 25)},
      {"university", Rect(40, 60, 60, 80)},
      {"suburbs", Rect(0, 85, 15, 100)},
  };

  // Recommend venues to the first few users: RangeReachEnum returns the
  // actual venues the user's (transitive) social circle has visited in a
  // district — one reachability pass per district, where the boolean API
  // could only say "somewhere in old town". The arena is reused across
  // queries, so steady state allocates nothing.
  const std::unique_ptr<QueryScratch> scratch = threed.NewScratch();
  std::vector<VertexId> venues;
  for (VertexId user = 0; user < 5; ++user) {
    std::printf("user %u can ask friends about:", user);
    bool any = false;
    for (const District& district : districts) {
      threed.EvaluateEnumInto(user, district.area, *scratch, venues);
      if (!venues.empty()) {
        std::printf(" %s (%zu venues, e.g. #%u)", district.name,
                    venues.size(), venues.front());
        any = true;
      }
    }
    std::printf("%s\n", any ? "" : " (no districts - lonely user)");
  }

  // Same workload through both methods: answers must agree; time differs.
  // Explicit scratches keep the hot loop off the method-owned default
  // scratch (a shared mutable the convenience API uses).
  const std::unique_ptr<QueryScratch> spareach_scratch =
      spareach.NewScratch();
  uint64_t agree = 0;
  uint64_t total = 0;
  Stopwatch threed_watch;
  double threed_micros = 0.0;
  double spareach_micros = 0.0;
  for (VertexId user = 0; user < 500; ++user) {
    for (const District& district : districts) {
      threed_watch.Restart();
      const bool a = threed.Evaluate(user, district.area, *scratch);
      threed_micros += threed_watch.ElapsedMicros();
      threed_watch.Restart();
      const bool b =
          spareach.Evaluate(user, district.area, *spareach_scratch);
      spareach_micros += threed_watch.ElapsedMicros();
      agree += (a == b);
      ++total;
    }
  }
  std::printf("\n%llu/%llu answers agree between 3DReach and SpaReach-BFL\n",
              static_cast<unsigned long long>(agree),
              static_cast<unsigned long long>(total));
  std::printf("3DReach: %.2f us/query, SpaReach-BFL: %.2f us/query\n",
              threed_micros / static_cast<double>(total),
              spareach_micros / static_cast<double>(total));
  return agree == total ? 0 : 1;
}
