// Converter for real geosocial datasets in SNAP layout into this
// library's format, completing the drop-in path for the paper's original
// inputs (e.g. SNAP's loc-gowalla_edges.txt + loc-gowalla_totalCheckins).
//
// Input:
//   <edges>     one "user user" friendship per line (made directed both
//               ways unless --directed);
//   <checkins>  one "user timestamp lat lon venue" per line (timestamp is
//               ignored; venue ids are strings and get fresh vertex ids).
// Output: <prefix>.edges / <prefix>.points, loadable with
//   gsr::LoadGeoSocialNetwork(prefix).
//
// Run:  ./build/examples/convert_snap edges.txt checkins.txt out_prefix
//       [--directed]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/geosocial_network.h"
#include "datagen/io.h"
#include "graph/digraph.h"

namespace {

using gsr::DiGraph;
using gsr::Point2D;
using gsr::VertexId;

int Fail(const std::string& message) {
  std::fprintf(stderr, "convert_snap: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <edges.txt> <checkins.txt> <out_prefix> "
                 "[--directed]\n",
                 argv[0]);
    return 2;
  }
  const std::string edges_path = argv[1];
  const std::string checkins_path = argv[2];
  const std::string out_prefix = argv[3];
  const bool directed = argc > 4 && std::strcmp(argv[4], "--directed") == 0;

  std::vector<std::pair<uint64_t, uint64_t>> friendships;
  std::vector<std::pair<uint64_t, VertexId>> checkins;  // (user, venue idx)
  uint64_t max_user = 0;

  // Friendships. SNAP friendship lists are undirected; emit both
  // directions by default (follow-style directed graphs pass --directed).
  {
    std::ifstream in(edges_path);
    if (!in) return Fail("cannot open " + edges_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream tokens(line);
      uint64_t a = 0;
      uint64_t b = 0;
      if (!(tokens >> a >> b)) return Fail("bad edge line: " + line);
      friendships.emplace_back(a, b);
      max_user = std::max({max_user, a, b});
    }
    std::fprintf(stderr, "read %zu friendship lines\n", friendships.size());
  }

  // Check-ins: venue strings map to dense indices; the venue keeps the
  // coordinates of its first check-in.
  std::unordered_map<std::string, VertexId> venue_ids;
  std::vector<Point2D> venue_points;
  {
    std::ifstream in(checkins_path);
    if (!in) return Fail("cannot open " + checkins_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream tokens(line);
      uint64_t user = 0;
      std::string timestamp;
      double lat = 0.0;
      double lon = 0.0;
      std::string venue;
      if (!(tokens >> user >> timestamp >> lat >> lon >> venue)) {
        return Fail("bad check-in line: " + line);
      }
      max_user = std::max(max_user, user);
      auto [it, inserted] = venue_ids.try_emplace(
          venue, static_cast<VertexId>(venue_points.size()));
      if (inserted) venue_points.push_back(Point2D{lon, lat});
      checkins.emplace_back(user, it->second);
    }
    std::fprintf(stderr, "read %zu check-ins over %zu distinct venues\n",
                 checkins.size(), venue_points.size());
  }

  // Final id space: users keep their ids, venues follow densely above.
  const VertexId venue_base = static_cast<VertexId>(max_user + 1);
  const VertexId num_vertices =
      venue_base + static_cast<VertexId>(venue_points.size());
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(friendships.size() * (directed ? 1 : 2) + checkins.size());
  for (const auto& [a, b] : friendships) {
    edges.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
    if (!directed) {
      edges.emplace_back(static_cast<VertexId>(b), static_cast<VertexId>(a));
    }
  }
  for (const auto& [user, venue] : checkins) {
    edges.emplace_back(static_cast<VertexId>(user), venue_base + venue);
  }

  auto graph = DiGraph::FromEdges(num_vertices, std::move(edges));
  if (!graph.ok()) return Fail(graph.status().ToString());

  std::vector<std::optional<Point2D>> points(num_vertices);
  for (size_t i = 0; i < venue_points.size(); ++i) {
    points[venue_base + i] = venue_points[i];
  }
  auto network =
      gsr::GeoSocialNetwork::Create(std::move(graph).value(), points);
  if (!network.ok()) return Fail(network.status().ToString());

  const gsr::Status save = SaveGeoSocialNetwork(*network, out_prefix);
  if (!save.ok()) return Fail(save.ToString());
  std::printf("wrote %s.edges / %s.points: %u vertices, %llu edges, "
              "%llu venues\n",
              out_prefix.c_str(), out_prefix.c_str(),
              network->num_vertices(),
              static_cast<unsigned long long>(network->num_edges()),
              static_cast<unsigned long long>(
                  network->num_spatial_vertices()));
  return 0;
}
