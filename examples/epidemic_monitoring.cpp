// Infectious-disease monitoring (the paper's third motivating
// application): given index cases in a contact network whose members
// check in at physical venues, determine which monitored districts each
// case can seed through chains of human interaction. One RangeReach query
// per (case, district); 3DReach-REV shines here because every query is a
// single 3-D plane probe regardless of the answer.
//
// Run:  ./build/examples/epidemic_monitoring

#include <cstdio>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "core/condensed_network.h"
#include "core/soc_reach.h"
#include "core/three_d_reach.h"
#include "datagen/generator.h"

int main() {
  using namespace gsr;  // NOLINT

  GeneratorConfig config;
  config.name = "contact-net";
  config.num_users = 20000;
  config.num_venues = 8000;
  config.num_friendships = 100000;  // Contact edges.
  config.num_checkins = 80000;      // Venue visits.
  config.core_fraction = 0.3;       // Sparse contact tracing graph.
  config.space_extent = 200.0;
  config.seed = 11;
  const GeoSocialNetwork network = GenerateGeoSocialNetwork(config);
  const CondensedNetwork cn(&network);
  const ThreeDReachRev index(&cn);
  const SocReach soc(&cn);

  // Health authority watches these districts.
  const std::vector<Rect> districts = {
      Rect(0, 0, 40, 40),      Rect(80, 80, 120, 120),
      Rect(160, 0, 200, 40),   Rect(0, 160, 40, 200),
      Rect(150, 150, 200, 200),
  };

  // Index cases: one user per thousand.
  std::vector<VertexId> cases;
  for (VertexId v = 0; v < config.num_users; v += 1000) cases.push_back(v);

  std::printf("monitoring %zu districts for %zu index cases\n",
              districts.size(), cases.size());

  // Explicit scratches: these loops are the hot path, and the two-argument
  // convenience Evaluate would funnel every query through each method's
  // shared default scratch.
  const std::unique_ptr<QueryScratch> rev_scratch = index.NewScratch();
  const std::unique_ptr<QueryScratch> soc_scratch = soc.NewScratch();

  uint64_t exposed_pairs = 0;
  Stopwatch watch;
  for (const VertexId patient : cases) {
    std::printf("case %5u can seed districts:", patient);
    bool any = false;
    for (size_t d = 0; d < districts.size(); ++d) {
      if (index.Evaluate(patient, districts[d], *rev_scratch)) {
        std::printf(" %zu", d);
        any = true;
        ++exposed_pairs;
      }
    }
    std::printf("%s\n", any ? "" : " none");
  }
  const double total_micros = watch.ElapsedMicros();
  const double queries =
      static_cast<double>(cases.size() * districts.size());
  std::printf("\n%llu exposed (case, district) pairs; "
              "%.2f us per query with 3DReach-REV\n",
              static_cast<unsigned long long>(exposed_pairs),
              total_micros / queries);

  // Cross-check against SocReach (descendant enumeration + point tests).
  for (const VertexId patient : cases) {
    for (const Rect& district : districts) {
      if (index.Evaluate(patient, district, *rev_scratch) !=
          soc.Evaluate(patient, district, *soc_scratch)) {
        std::fprintf(stderr, "methods disagree - bug!\n");
        return 1;
      }
    }
  }
  std::printf("3DReach-REV agrees with SocReach on all %0.f queries.\n",
              queries);
  return 0;
}
