// Live updates (the paper's Section-8 future-work scenario): venues open,
// users check in and follow each other while RangeReach queries keep
// running. DynamicRangeReach layers a small delta overlay on top of the
// 3DReach base index and stays exact; Rebuild() folds the overlay back in.
//
// Run:  ./build/examples/live_updates

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/dynamic_range_reach.h"
#include "datagen/generator.h"

int main() {
  using namespace gsr;  // NOLINT

  GeneratorConfig config;
  config.name = "live-city";
  config.num_users = 3000;
  config.num_venues = 6000;
  config.num_friendships = 20000;
  config.num_checkins = 40000;
  config.core_fraction = 0.7;
  config.space_extent = 100.0;
  config.seed = 99;
  DynamicRangeReach dynamic(GenerateGeoSocialNetwork(config));
  std::printf("base network indexed: %u vertices\n", dynamic.num_vertices());

  const Rect new_mall_area(60, 60, 70, 70);
  Rng rng(123);

  // A fresh district opens: 20 new venues, each discovered by a few users.
  std::vector<VertexId> new_venues;
  for (int i = 0; i < 20; ++i) {
    const VertexId venue = dynamic.AddVertex(
        Point2D{rng.NextDoubleInRange(60, 70), rng.NextDoubleInRange(60, 70)});
    new_venues.push_back(venue);
    for (int c = 0; c < 3; ++c) {
      const VertexId user =
          static_cast<VertexId>(rng.NextBounded(config.num_users));
      if (!dynamic.AddEdge(user, venue).ok()) return 1;
    }
  }
  std::printf("applied %zu live updates (no rebuild yet)\n",
              dynamic.pending_updates());

  // Queries remain exact against the overlay.
  uint32_t reach_before_rebuild = 0;
  Stopwatch watch;
  for (VertexId user = 0; user < 1000; ++user) {
    if (dynamic.Evaluate(user, new_mall_area)) ++reach_before_rebuild;
  }
  const double overlay_micros = watch.ElapsedMicros() / 1000.0;
  std::printf("%u/1000 users already reach the new district "
              "(%.2f us/query on the overlay)\n",
              reach_before_rebuild, overlay_micros);

  // Fold the delta into a fresh base index.
  watch.Restart();
  dynamic.Rebuild();
  std::printf("rebuild folded the delta in %.1f ms\n", watch.ElapsedMillis());

  watch.Restart();
  uint32_t reach_after_rebuild = 0;
  for (VertexId user = 0; user < 1000; ++user) {
    if (dynamic.Evaluate(user, new_mall_area)) ++reach_after_rebuild;
  }
  const double base_micros = watch.ElapsedMicros() / 1000.0;
  std::printf("%u/1000 users after rebuild (%.2f us/query at base speed)\n",
              reach_after_rebuild, base_micros);

  if (reach_before_rebuild != reach_after_rebuild) {
    std::fprintf(stderr, "answers changed across rebuild - bug!\n");
    return 1;
  }
  std::printf("overlay answers and rebuilt answers agree.\n");
  return 0;
}
